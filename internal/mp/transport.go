// Package mp implements the distributed-memory execution substrate of
// pluggable parallelisation: an MPI-like message-passing runtime. The
// paper's object aggregates (§III.C) — one instance per node, SPMD calls,
// scatter/gather/update of partitioned data — and the distributed checkpoint
// protocols (§IV.A) are built on the communicator defined here.
//
// Two transports are provided. The in-process transport runs each rank as a
// goroutine with its own application instance and delivers messages through
// channels; it simulates a multi-node cluster inside one process and
// supports dynamic world resizing (needed by §IV.B run-time adaptation).
// The TCP transport runs ranks over loopback sockets with length-prefixed
// frames, demonstrating that the same code paths work across real process
// boundaries; its world size is fixed once established (adaptation across
// TCP worlds goes through the core's in-process migration, which rebuilds
// the transport, or through the checkpoint/restart path, exactly like the
// paper's Figure 6).
//
// An optional delay function models the paper's two-machine topology: the
// cost of a message is latency(from,to) + bytes/bandwidth(from,to), so
// effects like "32 P pays inter-machine transfers" (Figures 4 and 5) can be
// reproduced with real waiting or, for large configurations, analytically in
// internal/perfmodel.
package mp

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDead is returned for communication with a rank that was killed by
// failure injection.
var ErrDead = errors.New("mp: peer rank is dead")

// ErrClosed is returned after the transport has been closed.
var ErrClosed = errors.New("mp: transport closed")

// DelayFunc models link cost: it returns how long a message of n bytes from
// rank `from` to rank `to` should take. A nil DelayFunc means no delay.
type DelayFunc func(from, to, n int) time.Duration

// Transport delivers tagged byte messages between ranks. Each rank must
// have at most one concurrent receiver (the SPMD model guarantees this: the
// rank's control thread is the only one that communicates).
type Transport interface {
	// Send delivers data (which the transport takes ownership of) to rank
	// `to` with the given tag.
	Send(from, to int, tag int64, data []byte) error
	// Recv blocks until a message from rank `from` with the given tag
	// arrives at rank `to`.
	Recv(to, from int, tag int64) ([]byte, error)
	// Kill marks a rank dead: communication with it fails from then on.
	Kill(rank int)
	// Alive reports whether the rank is still alive.
	Alive(rank int) bool
	// Grow extends the transport to support ranks [old, n). Transports
	// that cannot grow return an error.
	Grow(n int) error
	// Close releases all resources.
	Close() error
}

type message struct {
	from int
	tag  int64
	data []byte
}

// mailbox is the per-rank receive queue: a channel plus an out-of-order
// stash for messages whose tag is not currently wanted.
type mailbox struct {
	ch      chan message
	pending []message
	dead    chan struct{}
	once    sync.Once
}

func newMailbox() *mailbox {
	return &mailbox{ch: make(chan message, 1024), dead: make(chan struct{})}
}

func (m *mailbox) kill() { m.once.Do(func() { close(m.dead) }) }

func (m *mailbox) isDead() bool {
	select {
	case <-m.dead:
		return true
	default:
		return false
	}
}

// take returns the first pending or arriving message matching (from, tag).
// Only one goroutine per rank may call take (single-receiver rule).
func (m *mailbox) take(from int, tag int64) ([]byte, error) {
	for i, p := range m.pending {
		if p.from == from && p.tag == tag {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return p.data, nil
		}
	}
	for {
		select {
		case msg := <-m.ch:
			if msg.from == from && msg.tag == tag {
				return msg.data, nil
			}
			m.pending = append(m.pending, msg)
		case <-m.dead:
			return nil, ErrDead
		}
	}
}

// InProc is the channel-based transport.
type InProc struct {
	mu    sync.RWMutex
	boxes []*mailbox
	delay DelayFunc
}

// NewInProc creates an in-process transport for n ranks with optional delay
// injection.
func NewInProc(n int, delay DelayFunc) *InProc {
	t := &InProc{delay: delay}
	t.boxes = make([]*mailbox, n)
	for i := range t.boxes {
		t.boxes[i] = newMailbox()
	}
	return t
}

func (t *InProc) box(r int) (*mailbox, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if r < 0 || r >= len(t.boxes) {
		return nil, fmt.Errorf("mp: rank %d out of range [0,%d)", r, len(t.boxes))
	}
	return t.boxes[r], nil
}

// Send implements Transport.
func (t *InProc) Send(from, to int, tag int64, data []byte) error {
	dst, err := t.box(to)
	if err != nil {
		return err
	}
	src, err := t.box(from)
	if err != nil {
		return err
	}
	if src.isDead() || dst.isDead() {
		return ErrDead
	}
	if t.delay != nil {
		if d := t.delay(from, to, len(data)); d > 0 {
			time.Sleep(d)
		}
	}
	select {
	case dst.ch <- message{from: from, tag: tag, data: data}:
		return nil
	case <-dst.dead:
		return ErrDead
	}
}

// Recv implements Transport.
func (t *InProc) Recv(to, from int, tag int64) ([]byte, error) {
	dst, err := t.box(to)
	if err != nil {
		return nil, err
	}
	return dst.take(from, tag)
}

// Kill implements Transport.
func (t *InProc) Kill(rank int) {
	if b, err := t.box(rank); err == nil {
		b.kill()
	}
}

// Alive implements Transport.
func (t *InProc) Alive(rank int) bool {
	b, err := t.box(rank)
	return err == nil && !b.isDead()
}

// Grow implements Transport: ranks [len, n) gain fresh mailboxes.
func (t *InProc) Grow(n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.boxes) < n {
		t.boxes = append(t.boxes, newMailbox())
	}
	return nil
}

// Close implements Transport.
func (t *InProc) Close() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.boxes {
		b.kill()
	}
	return nil
}
