package mp

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// transports to exercise in every collective test.
func withTransports(t *testing.T, n int, fn func(t *testing.T, tr Transport)) {
	t.Helper()
	t.Run("inproc", func(t *testing.T) {
		tr := NewInProc(n, nil)
		defer tr.Close()
		fn(t, tr)
	})
	t.Run("tcp", func(t *testing.T) {
		tr, err := NewTCP(n, nil)
		if err != nil {
			t.Fatalf("NewTCP: %v", err)
		}
		defer tr.Close()
		fn(t, tr)
	})
}

func TestSendRecv(t *testing.T) {
	withTransports(t, 2, func(t *testing.T, tr Transport) {
		w := NewWorld(tr, 2)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 7, []byte("hello"))
			}
			got, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(got) != "hello" {
				return fmt.Errorf("got %q", got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestRecvMatchesTagOutOfOrder(t *testing.T) {
	withTransports(t, 2, func(t *testing.T, tr Transport) {
		w := NewWorld(tr, 2)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, []byte("first")); err != nil {
					return err
				}
				return c.Send(1, 2, []byte("second"))
			}
			// Receive in reverse tag order.
			b2, err := c.Recv(0, 2)
			if err != nil {
				return err
			}
			b1, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if string(b1) != "first" || string(b2) != "second" {
				return fmt.Errorf("got %q %q", b1, b2)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBarrierAllArrive(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		n := n
		withTransports(t, n, func(t *testing.T, tr Transport) {
			w := NewWorld(tr, n)
			var before atomic.Int64
			err := w.Run(func(c *Comm) error {
				for round := 1; round <= 5; round++ {
					before.Add(1)
					if err := c.Barrier(); err != nil {
						return err
					}
					if got := before.Load(); got < int64(round*n) {
						return fmt.Errorf("rank %d round %d released early: before=%d", c.Rank(), round, got)
					}
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < n; root += 2 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				tr := NewInProc(n, nil)
				defer tr.Close()
				w := NewWorld(tr, n)
				err := w.Run(func(c *Comm) error {
					var payload []byte
					if c.Rank() == root {
						payload = []byte{1, 2, 3, byte(root)}
					}
					got, err := c.Bcast(root, payload)
					if err != nil {
						return err
					}
					if !reflect.DeepEqual(got, []byte{1, 2, 3, byte(root)}) {
						return fmt.Errorf("rank %d got %v", c.Rank(), got)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestGatherScatter(t *testing.T) {
	withTransports(t, 4, func(t *testing.T, tr Transport) {
		w := NewWorld(tr, 4)
		err := w.Run(func(c *Comm) error {
			mine := []byte{byte(c.Rank())}
			parts, err := c.Gather(2, mine)
			if err != nil {
				return err
			}
			if c.Rank() == 2 {
				for r := 0; r < 4; r++ {
					if len(parts[r]) != 1 || parts[r][0] != byte(r) {
						return fmt.Errorf("gather parts[%d]=%v", r, parts[r])
					}
					parts[r] = []byte{byte(r * 10)}
				}
			}
			got, err := c.Scatter(2, parts)
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != byte(c.Rank()*10) {
				return fmt.Errorf("rank %d scatter got %v", c.Rank(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllgather(t *testing.T) {
	withTransports(t, 5, func(t *testing.T, tr Transport) {
		w := NewWorld(tr, 5)
		err := w.Run(func(c *Comm) error {
			mine := []byte(fmt.Sprintf("r%d", c.Rank()))
			all, err := c.Allgather(mine)
			if err != nil {
				return err
			}
			for r := 0; r < 5; r++ {
				if string(all[r]) != fmt.Sprintf("r%d", r) {
					return fmt.Errorf("rank %d: all[%d]=%q", c.Rank(), r, all[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestReduceAllreduce(t *testing.T) {
	withTransports(t, 4, func(t *testing.T, tr Transport) {
		w := NewWorld(tr, 4)
		sum := func(a, b float64) float64 { return a + b }
		err := w.Run(func(c *Comm) error {
			v := []float64{float64(c.Rank()), 1}
			red, err := c.ReduceF64s(0, v, sum)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				if red[0] != 6 || red[1] != 4 {
					return fmt.Errorf("reduce got %v", red)
				}
			} else if red != nil {
				return fmt.Errorf("non-root got %v", red)
			}
			all, err := c.AllreduceF64s(v, sum)
			if err != nil {
				return err
			}
			if all[0] != 6 || all[1] != 4 {
				return fmt.Errorf("allreduce got %v", all)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestConsecutiveCollectivesNoCrosstalk(t *testing.T) {
	tr := NewInProc(3, nil)
	defer tr.Close()
	w := NewWorld(tr, 3)
	err := w.Run(func(c *Comm) error {
		for i := 0; i < 20; i++ {
			var payload []byte
			if c.Rank() == 0 {
				payload = []byte{byte(i)}
			}
			got, err := c.Bcast(0, payload)
			if err != nil {
				return err
			}
			if got[0] != byte(i) {
				return fmt.Errorf("round %d: got %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKillFailsCommunication(t *testing.T) {
	tr := NewInProc(2, nil)
	defer tr.Close()
	tr.Kill(1)
	if tr.Alive(1) {
		t.Fatal("rank 1 should be dead")
	}
	if err := tr.Send(0, 1, 1, nil); !errors.Is(err, ErrDead) {
		t.Fatalf("send to dead rank: %v", err)
	}
	if _, err := tr.Recv(1, 0, 1); !errors.Is(err, ErrDead) {
		t.Fatalf("recv on dead rank: %v", err)
	}
}

func TestKillUnblocksReceiver(t *testing.T) {
	tr := NewInProc(2, nil)
	defer tr.Close()
	done := make(chan error, 1)
	go func() {
		_, err := tr.Recv(1, 0, 5)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tr.Kill(1)
	select {
	case err := <-done:
		if !errors.Is(err, ErrDead) {
			t.Fatalf("recv returned %v, want ErrDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv did not unblock after kill")
	}
}

func TestWorldPanicBecomesError(t *testing.T) {
	tr := NewInProc(2, nil)
	defer tr.Close()
	w := NewWorld(tr, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking rank did not surface as error")
	}
}

func TestGroupResizeAndLaunch(t *testing.T) {
	tr := NewInProc(2, nil)
	defer tr.Close()
	w := NewWorld(tr, 2)
	var total atomic.Int64
	err := w.Run(func(c *Comm) error {
		// Phase 1: world of 2.
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Expand to 4: incumbent rank 0 resizes and launches the
			// newcomers with the current collective seq.
			if err := c.Group().Resize(4); err != nil {
				return err
			}
			for r := 2; r < 4; r++ {
				w.Launch(r, c.Seq(), func(nc *Comm) error {
					v := []float64{float64(nc.Rank())}
					out, err := nc.AllreduceF64s(v, func(a, b float64) float64 { return a + b })
					if err != nil {
						return err
					}
					total.Add(int64(out[0]))
					return nil
				})
			}
		} else {
			// Rank 1 must not race ahead of the resize; in the real
			// engine this is sequenced by the safe-point barrier.
			for c.Size() != 4 {
				time.Sleep(time.Millisecond)
			}
		}
		for c.Size() != 4 {
			time.Sleep(time.Millisecond)
		}
		v := []float64{float64(c.Rank())}
		out, err := c.AllreduceF64s(v, func(a, b float64) float64 { return a + b })
		if err != nil {
			return err
		}
		total.Add(int64(out[0]))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0+1+2+3 = 6 observed by 4 ranks.
	if total.Load() != 24 {
		t.Fatalf("total = %d, want 24", total.Load())
	}
}

func TestTCPGrowRefused(t *testing.T) {
	tr, err := NewTCP(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Grow(4); err == nil {
		t.Fatal("TCP Grow succeeded, want error")
	}
	if err := tr.Grow(2); err != nil {
		t.Fatalf("TCP Grow to current size should be a no-op: %v", err)
	}
}

func TestDelayFuncApplied(t *testing.T) {
	var calls atomic.Int64
	tr := NewInProc(2, func(from, to, n int) time.Duration {
		calls.Add(1)
		return 0
	})
	defer tr.Close()
	w := NewWorld(tr, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, []byte("x"))
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("delay function never consulted")
	}
}

func TestEncodeDecodeF64sRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		return reflect.DeepEqual(DecodeF64s(EncodeF64s(v)), v) || len(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Allreduce(max) equals the max over all rank inputs, for any
// world size 1..6.
func TestQuickAllreduceMax(t *testing.T) {
	f := func(vals [6]float64, n8 uint8) bool {
		n := int(n8%6) + 1
		tr := NewInProc(n, nil)
		defer tr.Close()
		w := NewWorld(tr, n)
		want := vals[0]
		for r := 1; r < n; r++ {
			if vals[r] > want {
				want = vals[r]
			}
		}
		ok := atomic.Bool{}
		ok.Store(true)
		err := w.Run(func(c *Comm) error {
			out, err := c.AllreduceF64s([]float64{vals[c.Rank()]}, func(a, b float64) float64 {
				if a > b {
					return a
				}
				return b
			})
			if err != nil {
				return err
			}
			if out[0] != want {
				ok.Store(false)
			}
			return nil
		})
		return err == nil && ok.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
