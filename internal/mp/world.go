package mp

import (
	"errors"
	"fmt"
	"sync"
)

// World launches SPMD programs: one goroutine per rank, each with its own
// Comm endpoint. This is the "aggregate of objects" execution vehicle of
// §III.C — the core engine gives every rank its own application instance so
// state is isolated exactly as across real cluster nodes.
type World struct {
	g  *Group
	mu sync.Mutex
	wg sync.WaitGroup

	errs []error
}

// NewWorld creates a world of n ranks over the given transport (which must
// already support n ranks).
func NewWorld(tr Transport, n int) *World {
	return &World{g: NewGroup(tr, n)}
}

// Group exposes the world's group.
func (w *World) Group() *Group { return w.g }

// Run executes fn SPMD on every rank and waits for all of them (including
// ranks spawned later with Launch) to finish. The combined error of all
// ranks is returned.
func (w *World) Run(fn func(c *Comm) error) error {
	n := w.g.Size()
	for r := 0; r < n; r++ {
		w.Launch(r, 0, fn)
	}
	return w.Wait()
}

// Launch starts a single rank goroutine running fn with the collective
// sequence number preset to seq. The core engine uses it to add replicas
// during run-time expansion: the new rank adopts the incumbents' collective
// counter so subsequent collectives line up.
func (w *World) Launch(rank int, seq int64, fn func(c *Comm) error) {
	c := NewComm(w.g, rank)
	c.SetSeq(seq)
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				w.record(fmt.Errorf("mp: rank %d panicked: %v", rank, r))
			}
		}()
		if err := fn(c); err != nil {
			w.record(fmt.Errorf("mp: rank %d: %w", rank, err))
		}
	}()
}

func (w *World) record(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.errs = append(w.errs, err)
}

// Wait blocks until all launched ranks have returned and reports their
// combined error.
func (w *World) Wait() error {
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return errors.Join(w.errs...)
}
