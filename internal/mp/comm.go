package mp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

func waitFor(d time.Duration) { time.Sleep(d) }

// Collective kinds, encoded into tags so that consecutive collectives cannot
// cross-talk even when ranks run ahead of each other.
const (
	kindP2P int64 = iota
	kindBarrier
	kindBcast
	kindGather
	kindScatter
	kindReduce
)

// tagFor packs (kind, sequence, round/user-tag) into one int64 tag.
// Layout: kind in bits 56..59, seq in bits 16..55, low 16 bits for the round
// or user tag.
func tagFor(kind, seq, low int64) int64 {
	return kind<<56 | (seq&0xFFFFFFFFFF)<<16 | (low & 0xFFFF)
}

// Group is the shared state of a communicator world: its transport and its
// current size. The size changes only at quiescent points (safe points), as
// the paper's adaptability protocol requires; it is stored atomically so
// ranks waiting for a resize notification can read it without racing the
// master's write.
type Group struct {
	tr   Transport
	size atomic.Int64
}

// NewGroup wraps a transport into a group of n ranks.
func NewGroup(tr Transport, n int) *Group {
	g := &Group{tr: tr}
	g.size.Store(int64(n))
	return g
}

// Size reports the current world size.
func (g *Group) Size() int { return int(g.size.Load()) }

// Transport exposes the underlying transport (for failure injection).
func (g *Group) Transport() Transport { return g.tr }

// Resize changes the world size. Growing also grows the transport. The
// caller must guarantee quiescence: every live rank is at the same safe
// point and will observe the new size at its next collective.
func (g *Group) Resize(n int) error {
	if n < 1 {
		return fmt.Errorf("mp: world size must be >= 1, got %d", n)
	}
	if n > g.Size() {
		if err := g.tr.Grow(n); err != nil {
			return err
		}
	}
	g.size.Store(int64(n))
	return nil
}

// Comm is one rank's endpoint in the group. It is not safe for concurrent
// use: the rank's control thread is the single communicator (SPMD rule).
type Comm struct {
	rank int
	g    *Group
	seq  int64 // collective sequence number; advances identically on all ranks
}

// NewComm creates the endpoint for a rank.
func NewComm(g *Group, rank int) *Comm {
	return &Comm{rank: rank, g: g}
}

// Rank reports this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size reports the current world size.
func (c *Comm) Size() int { return c.g.Size() }

// Group returns the underlying group.
func (c *Comm) Group() *Group { return c.g }

// SetSeq forces the collective sequence number; a rank that joins an
// existing world (run-time expansion) must adopt the incumbent ranks'
// counter so tags keep matching.
func (c *Comm) SetSeq(seq int64) { c.seq = seq }

// Seq reports the collective sequence number.
func (c *Comm) Seq() int64 { return c.seq }

// Send delivers data to rank `to` with a user tag in [0, 65536).
func (c *Comm) Send(to int, tag int, data []byte) error {
	return c.g.tr.Send(c.rank, to, tagFor(kindP2P, 0, int64(tag)), data)
}

// Recv blocks for a message from rank `from` with the given user tag.
func (c *Comm) Recv(from int, tag int) ([]byte, error) {
	return c.g.tr.Recv(c.rank, from, tagFor(kindP2P, 0, int64(tag)))
}

// Barrier synchronises all ranks (dissemination algorithm: ceil(log2 n)
// rounds of pairwise messages).
func (c *Comm) Barrier() error {
	seq := c.seq
	c.seq++
	n := c.Size()
	if n == 1 {
		return nil
	}
	for k, round := 1, int64(0); k < n; k, round = k<<1, round+1 {
		to := (c.rank + k) % n
		from := (c.rank - k + n) % n
		if err := c.g.tr.Send(c.rank, to, tagFor(kindBarrier, seq, round), nil); err != nil {
			return fmt.Errorf("mp: barrier send: %w", err)
		}
		if _, err := c.g.tr.Recv(c.rank, from, tagFor(kindBarrier, seq, round)); err != nil {
			return fmt.Errorf("mp: barrier recv: %w", err)
		}
	}
	return nil
}

// Bcast distributes root's data to every rank via a binomial tree and
// returns the data (the root's own buffer on the root). At step m (halving
// from the world's power-of-two ceiling), ranks whose root-relative id is a
// multiple of 2m — which already hold the data — send to id+m; rank id
// receives at m = lowest set bit of id.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	seq := c.seq
	c.seq++
	n := c.Size()
	if n == 1 {
		return data, nil
	}
	rel := (c.rank - root + n) % n
	for m := nextPow2(n) >> 1; m >= 1; m >>= 1 {
		switch {
		case rel%(2*m) == 0 && rel+m < n:
			dst := (rel + m + root) % n
			if err := c.g.tr.Send(c.rank, dst, tagFor(kindBcast, seq, 0), data); err != nil {
				return nil, fmt.Errorf("mp: bcast send: %w", err)
			}
		case rel%(2*m) == m:
			src := (rel - m + root) % n
			got, err := c.g.tr.Recv(c.rank, src, tagFor(kindBcast, seq, 0))
			if err != nil {
				return nil, fmt.Errorf("mp: bcast recv: %w", err)
			}
			data = got
		}
	}
	return data, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Gather collects each rank's data at root. On root it returns a slice
// indexed by rank (root's own entry references data); elsewhere nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	seq := c.seq
	c.seq++
	n := c.Size()
	if c.rank != root {
		if err := c.g.tr.Send(c.rank, root, tagFor(kindGather, seq, 0), data); err != nil {
			return nil, fmt.Errorf("mp: gather send: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, n)
	out[root] = data
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		got, err := c.g.tr.Recv(c.rank, r, tagFor(kindGather, seq, 0))
		if err != nil {
			return nil, fmt.Errorf("mp: gather recv from %d: %w", r, err)
		}
		out[r] = got
	}
	return out, nil
}

// Scatter distributes parts[r] to each rank r from root and returns this
// rank's part. Only root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	seq := c.seq
	c.seq++
	n := c.Size()
	if c.rank == root {
		if len(parts) != n {
			return nil, fmt.Errorf("mp: scatter needs %d parts, got %d", n, len(parts))
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.g.tr.Send(c.rank, r, tagFor(kindScatter, seq, 0), parts[r]); err != nil {
				return nil, fmt.Errorf("mp: scatter send to %d: %w", r, err)
			}
		}
		return parts[root], nil
	}
	got, err := c.g.tr.Recv(c.rank, root, tagFor(kindScatter, seq, 0))
	if err != nil {
		return nil, fmt.Errorf("mp: scatter recv: %w", err)
	}
	return got, nil
}

// Allgather is Gather to rank 0 followed by Bcast of the concatenated
// frame table.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var frame []byte
	if c.rank == 0 {
		frame = packFrames(parts)
	}
	frame, err = c.Bcast(0, frame)
	if err != nil {
		return nil, err
	}
	return unpackFrames(frame)
}

func packFrames(parts [][]byte) []byte {
	total := 4
	for _, p := range parts {
		total += 4 + len(p)
	}
	out := make([]byte, 0, total)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(parts)))
	out = append(out, b4[:]...)
	for _, p := range parts {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(p)))
		out = append(out, b4[:]...)
		out = append(out, p...)
	}
	return out
}

func unpackFrames(frame []byte) ([][]byte, error) {
	if len(frame) < 4 {
		return nil, fmt.Errorf("mp: short frame table")
	}
	n := int(binary.LittleEndian.Uint32(frame[:4]))
	frame = frame[4:]
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(frame) < 4 {
			return nil, fmt.Errorf("mp: truncated frame table")
		}
		l := int(binary.LittleEndian.Uint32(frame[:4]))
		frame = frame[4:]
		if len(frame) < l {
			return nil, fmt.Errorf("mp: truncated frame payload")
		}
		out[i] = frame[:l:l]
		frame = frame[l:]
	}
	return out, nil
}

// --- typed float64 helpers -------------------------------------------------

// EncodeF64s converts a float64 slice to little-endian bytes.
func EncodeF64s(v []float64) []byte {
	b := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(f))
	}
	return b
}

// DecodeF64s converts little-endian bytes back to a float64 slice.
func DecodeF64s(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// SendF64s sends a float64 slice to rank `to`.
func (c *Comm) SendF64s(to, tag int, v []float64) error {
	return c.Send(to, tag, EncodeF64s(v))
}

// RecvF64s receives a float64 slice from rank `from`.
func (c *Comm) RecvF64s(from, tag int) ([]float64, error) {
	b, err := c.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	return DecodeF64s(b), nil
}

// ReduceF64s folds each rank's equally-long vector element-wise at root with
// op, deterministically in rank order (so results are reproducible across
// runs, which the checkpoint equivalence tests rely on). Returns the folded
// vector on root, nil elsewhere.
func (c *Comm) ReduceF64s(root int, v []float64, op func(a, b float64) float64) ([]float64, error) {
	seq := c.seq
	c.seq++
	if c.rank != root {
		if err := c.g.tr.Send(c.rank, root, tagFor(kindReduce, seq, 0), EncodeF64s(v)); err != nil {
			return nil, fmt.Errorf("mp: reduce send: %w", err)
		}
		return nil, nil
	}
	n := c.Size()
	acc := make([]float64, len(v))
	first := true
	for r := 0; r < n; r++ {
		var contrib []float64
		if r == root {
			contrib = v
		} else {
			b, err := c.g.tr.Recv(c.rank, r, tagFor(kindReduce, seq, 0))
			if err != nil {
				return nil, fmt.Errorf("mp: reduce recv from %d: %w", r, err)
			}
			contrib = DecodeF64s(b)
		}
		if len(contrib) != len(acc) {
			return nil, fmt.Errorf("mp: reduce length mismatch: rank %d sent %d, want %d", r, len(contrib), len(acc))
		}
		if first {
			copy(acc, contrib)
			first = false
			continue
		}
		for i := range acc {
			acc[i] = op(acc[i], contrib[i])
		}
	}
	return acc, nil
}

// AllreduceF64s is ReduceF64s at rank 0 followed by a broadcast.
func (c *Comm) AllreduceF64s(v []float64, op func(a, b float64) float64) ([]float64, error) {
	red, err := c.ReduceF64s(0, v, op)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if c.rank == 0 {
		payload = EncodeF64s(red)
	}
	payload, err = c.Bcast(0, payload)
	if err != nil {
		return nil, err
	}
	return DecodeF64s(payload), nil
}
