package fleet

import (
	"fmt"

	"ppar/internal/ea"
	"ppar/internal/jgf"
	"ppar/internal/md"
	"ppar/pp"
)

// StockWorkloads registers the repo's four paper workloads under their
// usual names. Every factory follows the repo's one-result-pointer idiom —
// all replicas share the result struct, only the master writes it — and
// the Result digest formats are fixed strings, so two runs of the same
// spec (interrupted or not, in any mode, at any team size) compare
// byte-identical.
//
// Integer params per workload (with defaults):
//
//	sor:    n (64), iters (50)
//	crypt:  n (4096)
//	md:     n (32), steps (20)
//	ea:     dim (8), pop (64), gens (20), seed (12345)
func StockWorkloads(s *Supervisor) {
	s.Register("sor", SORWorkload)
	s.Register("crypt", CryptWorkload)
	s.Register("md", MDWorkload)
	s.Register("ea", EAWorkload)
}

func param(spec JobSpec, key string, def int) int {
	if v, ok := spec.Params[key]; ok {
		return v
	}
	return def
}

// SORWorkload is the JGF successive over-relaxation stencil.
func SORWorkload(spec JobSpec) (*Instance, error) {
	n := param(spec, "n", 64)
	iters := param(spec, "iters", 50)
	if n < 4 || iters < 1 {
		return nil, fmt.Errorf("fleet: sor needs n >= 4 and iters >= 1 (got n=%d iters=%d)", n, iters)
	}
	res := &jgf.SORResult{}
	return &Instance{
		Factory: func() pp.App { return jgf.NewSOR(n, iters, res) },
		Modules: jgf.SORModules(spec.Mode),
		Result:  func() string { return fmt.Sprintf("gtotal=%.12e", res.Gtotal) },
	}, nil
}

// CryptWorkload is the JGF IDEA encrypt/decrypt round trip.
func CryptWorkload(spec JobSpec) (*Instance, error) {
	n := param(spec, "n", 4096)
	if n < 8 {
		return nil, fmt.Errorf("fleet: crypt needs n >= 8 (got %d)", n)
	}
	res := &jgf.CryptResult{}
	return &Instance{
		Factory: func() pp.App { return jgf.NewCrypt(n, res) },
		Modules: jgf.CryptModules(spec.Mode),
		Result:  func() string { return fmt.Sprintf("ok=%v checksum=%d", res.OK, res.Checksum) },
	}, nil
}

// MDWorkload is the Lennard-Jones molecular dynamics simulation.
func MDWorkload(spec JobSpec) (*Instance, error) {
	n := param(spec, "n", 32)
	steps := param(spec, "steps", 20)
	if n < 2 || steps < 1 {
		return nil, fmt.Errorf("fleet: md needs n >= 2 and steps >= 1 (got n=%d steps=%d)", n, steps)
	}
	res := &md.Observables{}
	return &Instance{
		Factory: func() pp.App { return md.New(md.LennardJones{}, n, steps, res) },
		Modules: md.Modules(spec.Mode),
		Result: func() string {
			return fmt.Sprintf("kinetic=%.12e potential=%.12e", res.Kinetic, res.Potential)
		},
	}, nil
}

// EAWorkload is the replicated-breeding genetic algorithm on the sphere
// problem.
func EAWorkload(spec JobSpec) (*Instance, error) {
	dim := param(spec, "dim", 8)
	pop := param(spec, "pop", 64)
	gens := param(spec, "gens", 20)
	seed := param(spec, "seed", 12345)
	if dim < 1 || pop < 2 || gens < 1 {
		return nil, fmt.Errorf("fleet: ea needs dim >= 1, pop >= 2, gens >= 1 (got dim=%d pop=%d gens=%d)", dim, pop, gens)
	}
	res := &ea.Result{}
	return &Instance{
		Factory: func() pp.App { return ea.New(ea.Sphere{D: dim}, pop, gens, uint64(seed), res) },
		Modules: ea.Modules(spec.Mode),
		Result:  func() string { return fmt.Sprintf("best=%.12e", res.Best) },
	}, nil
}
