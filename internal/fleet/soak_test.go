package fleet

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ppar/internal/ckpt"
	"ppar/internal/cluster"
	"ppar/pp"
)

// soakFactor scales the churn soak: 1 under -short (the per-PR CI tier),
// 4 in a full local run, and whatever PPAR_SOAK_FACTOR says in the nightly
// long soak.
func soakFactor(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("PPAR_SOAK_FACTOR"); v != "" {
		f, err := strconv.Atoi(v)
		if err != nil || f < 1 {
			t.Fatalf("bad PPAR_SOAK_FACTOR %q", v)
		}
		return f
	}
	if testing.Short() {
		return 1
	}
	return 4
}

// soakArtifact writes a failure-diagnosis summary where the CI soak job
// can pick it up (PPAR_SOAK_ARTIFACT), so a nightly failure reproduces
// without re-running two hours of churn.
func soakArtifact(t *testing.T, lines []string) {
	t.Helper()
	path := os.Getenv("PPAR_SOAK_ARTIFACT")
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Logf("writing soak artifact %s: %v", path, err)
	}
}

// TestFleetChurnSoak is the churn soak: a deterministic pseudo-random
// capacity walk (node loss and arrival, cluster.Flapping) plays against a
// live fleet of malleable, elastic and rigid jobs, with every capacity
// event re-budgeting the supervisor. The soak passes when
//
//   - every job completes byte-identical to the unadapted sequential
//     reference (no divergence, however many shrinks, suspensions and
//     re-sharded relaunches the churn forced),
//   - the number of forced suspensions stays inside the structural bound
//     (one eviction pass per capacity event — no flapping loop), and
//   - the checkpoint store's footprint after the soak is bounded by the
//     job count alone, independent of how many churn events played (no
//     artifact leak per relaunch).
func TestFleetChurnSoak(t *testing.T) {
	factor := soakFactor(t)
	top := cluster.Topology{Machines: 2, Cores: 4}
	full := top.TotalCores() // 8 budget units

	store := ckpt.NewMem()
	var logMu sync.Mutex
	suspensions := 0
	var logLines []string
	s, err := New(Config{Store: store, Budget: full, CheckpointEvery: 2,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			line := fmt.Sprintf(format, args...)
			logLines = append(logLines, line)
			if strings.Contains(line, "suspending") {
				suspensions++
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	s.Register("slow", slowWorkload)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The job mix: every elasticity class the scheduler knows, oversubmitted
	// so the queue stays busy for the whole churn window.
	cells := 360 * factor
	var ids []int64
	var wantDigests []string
	for i := 0; i < 3; i++ {
		specs := []JobSpec{
			{Tenant: "soak", Workload: "slow", Mode: pp.Shared,
				Threads: 4, MinThreads: 1, CheckpointEvery: 1,
				Params: map[string]int{"cells": cells, "blocks": cells / 5, "delay_us": 400}},
			{Tenant: "soak", Workload: "slow", Mode: pp.Distributed,
				Procs: 4, MinProcs: 2, CheckpointEvery: 1,
				Params: map[string]int{"cells": cells, "blocks": cells / 5, "delay_us": 400}},
			{Tenant: "soak", Workload: "slow",
				Params: map[string]int{"cells": cells / 4, "blocks": cells / 20, "delay_us": 400}},
		}
		for _, spec := range specs {
			id, err := s.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			wantDigests = append(wantDigests, slowWant(spec.Params["cells"]))
		}
	}

	// The capacity walk: deterministic from the seed, so a failing soak
	// reproduces exactly. Thread capacity is ignored here — the fleet's
	// budget is total lines of execution, which is the proc walk.
	const period = 60 * time.Millisecond
	events := 10 * factor
	churn := cluster.NewChurnSim(top, cluster.Flapping(top, period, events, 42)...)
	churn.OnChange(func(_, procs int) { s.SetBudget(procs) })
	stopChurn := churn.Start()
	time.Sleep(time.Duration(events)*period + 2*period)
	stopChurn()

	// The cluster heals; the fleet must converge and drain.
	s.SetBudget(full)
	if err := s.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	var report []string
	report = append(report, fmt.Sprintf("factor=%d events=%d suspensions=%d", factor, events, suspensions))
	failed := false
	for i, id := range ids {
		st, _ := s.Job(id)
		report = append(report, fmt.Sprintf("job %d: state=%s result=%q err=%q", id, st.State, st.Result, st.Error))
		if st.State != Done || st.Result != wantDigests[i] {
			t.Errorf("job %d diverged: state=%s result=%q want %q (%s)",
				id, st.State, st.Result, wantDigests[i], st.Error)
			failed = true
		}
	}

	// One eviction pass per capacity event, at most #running jobs each:
	// anything past that is a re-suspension loop.
	if bound := (events + 1) * len(ids); suspensions > bound {
		t.Errorf("suspension churn: %d suspensions for %d events (bound %d)", suspensions, events, bound)
		failed = true
	}

	// Store growth bounded by the job count, not the churn length: each job
	// keeps at most its newest canonical snapshot, manifest and chain head,
	// plus the fleet journal — relaunches overwrite, never accumulate.
	items, bytes := store.Size()
	report = append(report, fmt.Sprintf("store: %d items, %d bytes", items, bytes))
	if maxItems := 6*len(ids) + 8; items > maxItems {
		t.Errorf("store leaked artifacts across churn: %d items (bound %d)", items, maxItems)
		failed = true
	}
	if maxBytes := int64(len(ids)) * int64(cells) * 64 * 8; bytes > maxBytes {
		t.Errorf("store leaked bytes across churn: %d (bound %d)", bytes, maxBytes)
		failed = true
	}
	if failed {
		logMu.Lock()
		report = append(report, logLines...)
		logMu.Unlock()
	}
	soakArtifact(t, report)
}
