package fleet

import (
	"encoding/json"
	"fmt"

	"ppar/internal/serial"
)

// The journal is the supervisor's own checkpoint: one JSON document,
// atomically replaced through the shared store on every accepted
// submission and every terminal transition. It rides the store's canonical
// snapshot path (a single-field PPCKPT1 container) so it inherits the
// backend's atomicity — on the filesystem store, temp+rename+dirsync —
// without the Store interface needing a listing operation: recovery is one
// Load, not a scan.
//
// Entry states are coarser than JobState on purpose: queued, running and
// stopping all journal as "pending", because after a crash they are
// indistinguishable — the work is not done and must be re-admitted. A stop
// that had not completed by the time of a crash is therefore forgotten and
// the job resumes; see Supervisor.Stop.
const (
	journalApp   = "fleet-journal"
	journalField = "journal"

	journalPending = "pending"
	journalDone    = "done"
	journalFailed  = "failed"
	journalStopped = "stopped"
)

type journalDoc struct {
	NextID  int64          `json:"next_id"`
	Entries []journalEntry `json:"entries"`
}

type journalEntry struct {
	ID     int64   `json:"id"`
	Spec   JobSpec `json:"spec"`
	State  string  `json:"state"`
	Result string  `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

func journalState(st JobState) string {
	switch st {
	case Done:
		return journalDone
	case Failed:
		return journalFailed
	case Stopped:
		return journalStopped
	default:
		return journalPending
	}
}

func (s *Supervisor) saveJournalLocked() error {
	if s.crashed {
		return nil // the "dead" daemon writes nothing
	}
	doc := journalDoc{NextID: s.nextID, Entries: make([]journalEntry, 0, len(s.order))}
	for _, id := range s.order {
		j := s.jobs[id]
		en := journalEntry{ID: j.id, Spec: j.spec, State: journalState(j.state), Result: j.result}
		if j.err != nil {
			en.Error = j.err.Error()
		}
		doc.Entries = append(doc.Entries, en)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	snap := serial.NewSnapshot(journalApp, "fleet", uint64(len(doc.Entries)))
	snap.Fields[journalField] = serial.Bytes(data)
	//lint:ignore pplock the journal write IS the admission critical section: Submit must not return (and the scheduler must not replan) before the entry is durable, so the store I/O deliberately rides under the supervisor lock
	return s.cfg.Store.Save(snap)
}

func (s *Supervisor) loadJournalLocked() (journalDoc, error) {
	var doc journalDoc
	//lint:ignore pplock recovery runs once from Start before the scheduler loop exists; holding the lock across the read is harmless and keeps the journal invariant simple
	snap, found, err := s.cfg.Store.Load(journalApp)
	if err != nil {
		return doc, fmt.Errorf("fleet: reading journal: %w", err)
	}
	if !found {
		return doc, nil // fresh fleet
	}
	v, ok := snap.Fields[journalField]
	if !ok || v.Tag != serial.TBytes {
		return doc, fmt.Errorf("fleet: journal snapshot has no %q payload", journalField)
	}
	if err := json.Unmarshal(v.B, &doc); err != nil {
		return doc, fmt.Errorf("fleet: decoding journal: %w", err)
	}
	return doc, nil
}
