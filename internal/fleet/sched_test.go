package fleet

import (
	"testing"

	"ppar/pp"
)

// The malleability acceptance drill: a high-priority submit into a full
// machine budget shrinks the low-priority running job through the engine's
// in-process adaptation at a safe point; once the high-priority job
// finishes, the survivor is grown back — and still lands on the exact
// digest.
func TestFleetBudgetSqueeze(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 8, CheckpointEvery: 4})
	defer s.Close()

	// Low-priority malleable job filling the whole budget: 8 threads,
	// shrinkable to 2. ~1ms per cell keeps it running for hundreds of ms
	// at any team size.
	low, err := s.Submit(JobSpec{Tenant: "batch", Workload: "slow", Mode: pp.Shared,
		Threads: 8, MinThreads: 2, Priority: 0,
		Params: map[string]int{"cells": 1000, "blocks": 200, "delay_us": 1500}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "low-priority job to own the full budget", func() bool {
		st, _ := s.Job(low)
		return st.State == Running && st.Alloc == 8
	})

	// High-priority rigid job: needs 4 units out of a full budget.
	high, err := s.Submit(JobSpec{Tenant: "interactive", Workload: "slow", Mode: pp.Shared,
		Threads: 4, Priority: 10,
		Params: map[string]int{"cells": 80, "blocks": 16, "delay_us": 500}})
	if err != nil {
		t.Fatal(err)
	}

	// The scheduler must shrink the low job to 4 and admit the high one.
	waitFor(t, "squeeze: low shrunk to 4, high running", func() bool {
		lo, _ := s.Job(low)
		hi, _ := s.Job(high)
		return lo.Alloc == 4 && hi.State == Running
	})

	hi, err := s.WaitJob(testCtx(t), high)
	if err != nil {
		t.Fatal(err)
	}
	if hi.State != Done || hi.Result != slowWant(80) {
		t.Fatalf("high-priority job: state=%s result=%q (%s)", hi.State, hi.Result, hi.Error)
	}

	// With the budget free again, the starved survivor grows back.
	waitFor(t, "low-priority job grown back to 8", func() bool {
		st, _ := s.Job(low)
		return st.Alloc == 8
	})

	lo, err := s.WaitJob(testCtx(t), low)
	if err != nil {
		t.Fatal(err)
	}
	if lo.State != Done || lo.Result != slowWant(1000) {
		t.Fatalf("shrunken job: state=%s result=%q (%s)", lo.State, lo.Result, lo.Error)
	}
	if lo.Report == nil || !lo.Report.Adapted {
		t.Fatal("the squeeze was not an engine adaptation (Report.Adapted unset)")
	}
}

// Admission control: when the budget cannot fit a rigid job it queues (no
// leapfrogging by later lower-priority submissions), and runs when the
// budget frees.
func TestFleetAdmissionControl(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 4})
	defer s.Close()
	first, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared, Threads: 4,
		Params: map[string]int{"cells": 200, "blocks": 40, "delay_us": 1000}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job running", func() bool {
		st, _ := s.Job(first)
		return st.State == Running
	})
	second, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared, Threads: 4, Priority: 5,
		Params: map[string]int{"cells": 40, "blocks": 8}})
	if err != nil {
		t.Fatal(err)
	}
	// Head-of-line: a later 1-unit job must not leapfrog the blocked
	// 4-unit job even though it would fit alongside the first.
	third, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow",
		Params: map[string]int{"cells": 20, "blocks": 4}})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Job(second); st.State != Queued {
		t.Fatalf("second job is %s on a full budget", st.State)
	}
	if st, _ := s.Job(third); st.State != Queued {
		t.Fatalf("third job leapfrogged the blocked queue head: %s", st.State)
	}
	if err := s.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{first, second, third} {
		if st, _ := s.Job(id); st.State != Done {
			t.Errorf("job %d: %s (%s)", id, st.State, st.Error)
		}
	}
}

// Per-tenant quotas: with TenantMaxJobs=1 a tenant's second job waits even
// though the machine budget has room, while another tenant's job flows.
func TestFleetTenantQuota(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 8, TenantMaxJobs: 1})
	defer s.Close()
	a1, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow",
		Params: map[string]int{"cells": 100, "blocks": 20, "delay_us": 2000}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow",
		Params: map[string]int{"cells": 20, "blocks": 4}})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s.Submit(JobSpec{Tenant: "b", Workload: "slow",
		Params: map[string]int{"cells": 20, "blocks": 4}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tenant b's job to run past tenant a's quota", func() bool {
		st, _ := s.Job(b1)
		return st.State == Running || st.State == Done
	})
	a1St, _ := s.Job(a1)
	a2St, _ := s.Job(a2)
	if !(a1St.State == Running || a1St.State == Done) {
		t.Fatalf("tenant a's first job is %s", a1St.State)
	}
	if a1St.State == Running && a2St.State != Queued {
		t.Fatalf("tenant a exceeded its quota: job1=%s job2=%s", a1St.State, a2St.State)
	}
	if err := s.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{a1, a2, b1} {
		if st, _ := s.Job(id); st.State != Done {
			t.Errorf("job %d: %s (%s)", id, st.State, st.Error)
		}
	}
}

// TenantMaxUnits caps a tenant's allocation: a malleable job launches at
// the tenant cap rather than its desired size.
func TestFleetTenantUnitCap(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 8, TenantMaxUnits: 2})
	defer s.Close()
	id, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared,
		Threads: 6, MinThreads: 1,
		Params: map[string]int{"cells": 100, "blocks": 20, "delay_us": 1000}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "capped launch", func() bool {
		st, _ := s.Job(id)
		return st.State == Running
	})
	if st, _ := s.Job(id); st.Alloc > 2 {
		t.Fatalf("tenant allocated %d units over a cap of 2", st.Alloc)
	}
	if st, err := s.WaitJob(testCtx(t), id); err != nil || st.State != Done || st.Result != slowWant(100) {
		t.Fatalf("capped job: %+v err=%v", st, err)
	}
	// A rigid job that can never fit under the tenant cap is refused.
	if _, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared, Threads: 4}); err == nil {
		t.Fatal("rigid job over the tenant unit cap accepted")
	}
}
