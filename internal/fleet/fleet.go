// Package fleet hosts many concurrent engine runs behind one supervisor —
// the checkpoint-manager-as-a-service layer under cmd/ppserve.
//
// A Supervisor owns the full lifecycle of every job submitted to it:
// workload factories are registered by name, Submit validates and journals
// a JobSpec, and the scheduler launches it as an ordinary pp engine when
// the machine budget admits it (queued → running → done/failed/stopped).
// Each job checkpoints into its own per-tenant namespace of the shared
// store (pp.NamespacedStore twice: tenant, then job), so no two jobs — and
// no two tenants — can ever see or clear each other's artifacts.
//
// Budget scheduling counts lines of execution (threads × procs). Jobs
// carry a priority and, for Shared-mode jobs, a MinThreads floor that
// makes them malleable: a high-priority submit into a full budget shrinks
// the lowest-priority malleable running job through the engine's own
// in-process adaptation (RequestAdapt, applied at the next safe point),
// and when budget frees up again starved jobs are grown back. Rigid jobs
// simply wait — admission control, the paper's "adaptation by restart"
// degenerate case.
//
// Crash safety is inherited from the checkpoint layer and lifted to the
// fleet: every accepted JobSpec is journalled through the store before
// Submit returns, and each engine's run ledger lives in the job's
// namespace. A kill -9 of the daemon followed by New+Start over the same
// store re-admits every unfinished journal entry and each re-launched
// engine resumes from its newest manifest/chain exactly as a single-run
// relaunch would.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sync"

	"ppar/pp"
)

// JobSpec describes one job: which workload to run, for which tenant, in
// which deployment shape, and how it participates in budget scheduling.
// The JSON field names are the POST /jobs wire format.
type JobSpec struct {
	// Tenant namespaces the job's checkpoints and quotas. Letters, digits,
	// '.', '_' and '-' only (it becomes a store key prefix).
	Tenant string `json:"tenant"`
	// Workload names a registered workload factory (sor, md, crypt, ea).
	Workload string `json:"workload"`
	// Params are workload-specific integer knobs (sizes, iterations,
	// seeds); each workload documents its keys and defaults.
	Params map[string]int `json:"params,omitempty"`
	// Mode is the deployment mode (unset = Sequential).
	Mode pp.Mode `json:"mode,omitempty"`
	// Threads/Procs size the deployment (defaulted per mode like pp.New).
	Threads int `json:"threads,omitempty"`
	Procs   int `json:"procs,omitempty"`
	// MinThreads, for Shared-mode jobs, is the smallest team the job may
	// be shrunk to under budget pressure; 0 (or >= Threads) makes the job
	// rigid. Malleable jobs may also be launched below Threads when the
	// budget is tight and grown later.
	MinThreads int `json:"min_threads,omitempty"`
	// MinProcs, for Distributed-mode jobs, is the smallest world the job
	// may be relaunched into; 0 (or >= Procs) makes the world rigid.
	// Unlike MinThreads this is not an in-place resize: an elastic job
	// under budget pressure is checkpoint-stopped, requeued, and
	// relaunched at fewer ranks, with the re-sharding restore
	// repartitioning its state — the paper's adaptation-by-restart path
	// with the restart made cheap. Elastic jobs may also be launched
	// below Procs when the budget is tight; they grow back only on their
	// next relaunch.
	MinProcs int `json:"min_procs,omitempty"`
	// Priority orders admission and decides who shrinks whom (higher wins;
	// equal priorities are FIFO).
	Priority int `json:"priority,omitempty"`
	// CheckpointEvery overrides the supervisor's default checkpoint
	// cadence in safe points.
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
}

var tenantRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// normalize validates the spec and fills mode-dependent defaults, exactly
// mirroring core.Config.normalize so a spec's budget cost is known before
// the engine exists.
func (s *JobSpec) normalize() error {
	if !tenantRe.MatchString(s.Tenant) {
		return fmt.Errorf("fleet: invalid tenant %q (letters, digits, '.', '_', '-')", s.Tenant)
	}
	if s.Workload == "" {
		return errors.New("fleet: spec names no workload")
	}
	if s.Mode == 0 {
		s.Mode = pp.Sequential
	}
	if s.Threads < 1 {
		s.Threads = 1
	}
	if s.Procs < 1 {
		s.Procs = 1
	}
	switch s.Mode {
	case pp.Sequential:
		s.Threads, s.Procs = 1, 1
	case pp.Shared:
		s.Procs = 1
	case pp.Distributed:
		s.Threads = 1
	case pp.Hybrid:
	default:
		return fmt.Errorf("fleet: unknown mode %d", int(s.Mode))
	}
	if s.MinThreads < 1 || s.MinThreads > s.Threads {
		s.MinThreads = s.Threads // rigid
	}
	if s.Mode != pp.Distributed || s.MinProcs < 1 || s.MinProcs > s.Procs {
		s.MinProcs = s.Procs // rigid world
	}
	return nil
}

// units is the job's budget cost in lines of execution.
func (s *JobSpec) units() int { return s.Threads * s.Procs }

// minUnits is the smallest budget the job can run on.
func (s *JobSpec) minUnits() int { return s.MinThreads * s.MinProcs }

// malleable reports whether the scheduler may resize the job at run time.
// Only Shared-mode teams resize in place today: Sequential has no
// machinery, and distributed worlds only resize through scheduled policies
// (ranks synchronise safe-point counters at collectives, not at
// RequestAdapt).
func (s *JobSpec) malleable() bool { return s.Mode == pp.Shared && s.MinThreads < s.Threads }

// elastic reports whether the scheduler may relaunch the job at a smaller
// world: the fixed TCP/Distributed world cannot resize in place, but a
// checkpoint-stop followed by a relaunch at fewer procs re-shards the
// state at restore time.
func (s *JobSpec) elastic() bool { return s.Mode == pp.Distributed && s.MinProcs < s.Procs }

// JobState is the lifecycle state of one job.
type JobState string

// The job lifecycle: Queued → Running → Done/Failed, with Stop carving out
// Stopping → Stopped. A Running job can also return to Queued when its
// engine parks itself (supervisor shutdown or a workload-internal
// checkpoint-and-stop): the job is suspended, not finished, and the
// journal keeps it pending so the next Start resumes it.
const (
	Queued   JobState = "queued"
	Running  JobState = "running"
	Stopping JobState = "stopping"
	Done     JobState = "done"
	Failed   JobState = "failed"
	Stopped  JobState = "stopped"
)

// terminal reports whether the state is final.
func terminal(st JobState) bool { return st == Done || st == Failed || st == Stopped }

// JobStatus is the externally visible snapshot of one job (the
// GET /jobs/{id} payload).
type JobStatus struct {
	ID       int64    `json:"id"`
	Tenant   string   `json:"tenant"`
	Workload string   `json:"workload"`
	State    JobState `json:"state"`
	Priority int      `json:"priority"`
	Mode     pp.Mode  `json:"mode"`
	// Desired/Min/Alloc are budget units (threads × procs): what the spec
	// asks for, the malleability floor, and what is currently allocated.
	Desired int `json:"desired"`
	Min     int `json:"min"`
	Alloc   int `json:"alloc"`
	// Result is the workload's deterministic result digest (Done jobs).
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	// Report carries the engine's measurements: live for running jobs,
	// final for finished ones, absent for jobs that never launched.
	Report *pp.Report `json:"report,omitempty"`
}

// Status is the fleet-wide snapshot (the GET /status payload).
type Status struct {
	Budget int         `json:"budget"`
	Used   int         `json:"used"`
	Free   int         `json:"free"`
	Jobs   []JobStatus `json:"jobs"`
}

// Instance is one engine-ready instantiation of a workload: the factory
// and modules to deploy, plus a closure producing the run's deterministic
// result digest (it shares the result pointer every replica writes
// through, following the repo's one-result-pointer idiom).
type Instance struct {
	Factory pp.Factory
	Modules []*pp.Module
	Result  func() string
}

// WorkloadFunc instantiates a workload for one job spec. It is called once
// per launch (so a resumed job re-instantiates cleanly) and must not
// retain state across calls.
type WorkloadFunc func(spec JobSpec) (*Instance, error)

// Config assembles one supervisor.
type Config struct {
	// Store is the shared checkpoint backend; every job checkpoints into
	// its own namespace of it and the job journal lives in it. Required.
	Store pp.Store
	// Budget is the machine budget in lines of execution (threads × procs
	// summed over running jobs). Required (>= 1).
	Budget int
	// TenantMaxJobs caps concurrently running jobs per tenant (0 = none).
	TenantMaxJobs int
	// TenantMaxUnits caps concurrently allocated budget units per tenant
	// (0 = none).
	TenantMaxUnits int
	// CheckpointEvery is the default checkpoint cadence in safe points for
	// jobs that do not set their own (default 8).
	CheckpointEvery uint64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

type job struct {
	id   int64
	spec JobSpec

	state   JobState
	stopReq bool // a user Stop is in flight
	alloc   int  // budget units currently allocated (0 when not running)
	pending int  // units after an in-flight resize (0 = none in flight)
	result  string
	err     error

	eng    *pp.Engine
	inst   *Instance
	cancel context.CancelFunc
	report *pp.Report    // final engine report, kept after the engine is gone
	done   chan struct{} // closed on transition to a terminal state
}

func (j *job) desired() int  { return j.spec.units() }
func (j *job) min() int      { return j.spec.minUnits() }
func (j *job) occupied() int { return max(j.alloc, j.pending) }

// Supervisor owns many engine lifecycles over one shared store. Create
// with New, Register workloads, then Start (which recovers the journal);
// all methods are safe for concurrent use.
type Supervisor struct {
	cfg Config

	mu        sync.Mutex
	workloads map[string]WorkloadFunc
	jobs      map[int64]*job
	order     []int64 // submission order (journal order after recovery)
	nextID    int64
	started   bool
	closed    bool
	crashed   bool // test hook: the daemon "died"; freeze journal and states

	kick     chan struct{}
	closeCh  chan struct{}
	loopDone chan struct{}
	wg       sync.WaitGroup
}

// New builds a supervisor; Register workloads and call Start before
// submitting.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Store == nil {
		return nil, errors.New("fleet: config needs a store")
	}
	if cfg.Budget < 1 {
		return nil, errors.New("fleet: config needs a budget >= 1")
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 8
	}
	return &Supervisor{
		cfg:       cfg,
		workloads: map[string]WorkloadFunc{},
		jobs:      map[int64]*job{},
		nextID:    1,
		kick:      make(chan struct{}, 1),
		closeCh:   make(chan struct{}),
		loopDone:  make(chan struct{}),
	}, nil
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Register makes a workload available under name. Submissions referencing
// unregistered names are rejected; journal entries referencing names that
// are no longer registered fail at launch, not at recovery.
func (s *Supervisor) Register(name string, w WorkloadFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workloads[name] = w
}

// Start loads the journal, re-admits every unfinished entry, and starts
// the scheduler. It returns how many jobs were recovered into the queue;
// each resumes from its newest checkpoint when launched (the engine's own
// crash-restart path — the supervisor only re-creates the deployment).
func (s *Supervisor) Start() (recovered int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return 0, errors.New("fleet: supervisor already started")
	}
	doc, err := s.loadJournalLocked()
	if err != nil {
		return 0, err
	}
	if doc.NextID > s.nextID {
		s.nextID = doc.NextID
	}
	for _, en := range doc.Entries {
		spec := en.Spec
		if nerr := spec.normalize(); nerr != nil {
			return 0, fmt.Errorf("fleet: journal entry %d: %w", en.ID, nerr)
		}
		j := &job{id: en.ID, spec: spec, done: make(chan struct{})}
		switch en.State {
		case journalPending:
			j.state = Queued
			recovered++
		case journalDone:
			j.state = Done
			j.result = en.Result
			close(j.done)
		case journalFailed:
			j.state = Failed
			j.err = errors.New(en.Error)
			close(j.done)
		case journalStopped:
			j.state = Stopped
			close(j.done)
		default:
			return 0, fmt.Errorf("fleet: journal entry %d has unknown state %q", en.ID, en.State)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.id >= s.nextID {
			s.nextID = j.id + 1
		}
	}
	s.started = true
	go s.loop()
	s.kickSched()
	return recovered, nil
}

// Submit validates, journals and queues one job. The spec is durable
// before Submit returns: a daemon crash after a successful Submit never
// loses the job. Jobs whose spec can never fit the machine budget are
// rejected here rather than queued forever.
func (s *Supervisor) Submit(spec JobSpec) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return 0, errors.New("fleet: supervisor not started")
	}
	if s.closed {
		return 0, errors.New("fleet: supervisor closed")
	}
	if err := spec.normalize(); err != nil {
		return 0, err
	}
	if _, ok := s.workloads[spec.Workload]; !ok {
		return 0, fmt.Errorf("fleet: unknown workload %q", spec.Workload)
	}
	need := spec.units()
	if spec.malleable() || spec.elastic() {
		need = spec.minUnits() // resizable jobs can start at their floor
	}
	if need > s.cfg.Budget {
		return 0, fmt.Errorf("fleet: job needs %d units but the machine budget is %d", need, s.cfg.Budget)
	}
	if s.cfg.TenantMaxUnits > 0 && need > s.cfg.TenantMaxUnits {
		return 0, fmt.Errorf("fleet: job needs %d units but tenant %q is capped at %d", need, spec.Tenant, s.cfg.TenantMaxUnits)
	}
	id := s.nextID
	s.nextID++
	j := &job{id: id, spec: spec, state: Queued, done: make(chan struct{})}
	s.jobs[id] = j
	s.order = append(s.order, id)
	if err := s.saveJournalLocked(); err != nil {
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.nextID--
		return 0, fmt.Errorf("fleet: journalling job: %w", err)
	}
	s.kickSched()
	return id, nil
}

// Stop requests a job's end: a queued job is marked stopped immediately; a
// running job gets a graceful checkpoint-and-stop at its next safe point
// (state Stopping until the engine unwinds). Stopping an already finished
// job is an error. Note the deliberate crash semantics: the stop is only
// journalled once the engine has actually stopped, so a daemon killed
// mid-Stopping forgets the request and resumes the job — a crash never
// turns an unacknowledged stop into a lost job.
func (s *Supervisor) Stop(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return fmt.Errorf("fleet: no job %d", id)
	}
	switch j.state {
	case Queued:
		j.state = Stopped
		close(j.done)
		if err := s.saveJournalLocked(); err != nil {
			s.logf("fleet: journalling stop of job %d: %v", id, err)
		}
		s.kickSched()
	case Running:
		j.state = Stopping
		j.stopReq = true
		if j.cancel != nil {
			j.cancel()
		}
	case Stopping:
		// Already on its way down.
	default:
		return fmt.Errorf("fleet: job %d already %s", id, j.state)
	}
	return nil
}

// Job returns one job's status.
func (s *Supervisor) Job(id int64) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

// Status returns the fleet-wide snapshot: budget occupancy plus every
// job's status in submission order.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{Budget: s.cfg.Budget, Used: s.usedLocked(), Jobs: make([]JobStatus, 0, len(s.order))}
	st.Free = st.Budget - st.Used
	for _, id := range s.order {
		st.Jobs = append(st.Jobs, s.statusLocked(s.jobs[id]))
	}
	return st
}

func (s *Supervisor) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:       j.id,
		Tenant:   j.spec.Tenant,
		Workload: j.spec.Workload,
		State:    j.state,
		Priority: j.spec.Priority,
		Mode:     j.spec.Mode,
		Desired:  j.desired(),
		Min:      j.min(),
		Alloc:    j.alloc,
		Result:   j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch {
	case j.eng != nil && !terminal(j.state):
		rep := j.eng.Report()
		st.Report = &rep
	case j.report != nil:
		st.Report = j.report
	}
	return st
}

// WaitJob blocks until the job reaches a terminal state (or ctx ends) and
// returns its final status.
func (s *Supervisor) WaitJob(ctx context.Context, id int64) (JobStatus, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobStatus{}, fmt.Errorf("fleet: no job %d", id)
	}
	select {
	case <-j.done:
		st, _ := s.Job(id)
		return st, nil
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Drain blocks until every submitted job is terminal (or ctx ends).
func (s *Supervisor) Drain(ctx context.Context) error {
	for {
		s.mu.Lock()
		var waitID int64 = -1
		for _, id := range s.order {
			if !terminal(s.jobs[id].state) {
				waitID = id
				break
			}
		}
		s.mu.Unlock()
		if waitID < 0 {
			return nil
		}
		if _, err := s.WaitJob(ctx, waitID); err != nil {
			return err
		}
	}
}

// Close shuts the supervisor down gracefully: submissions are refused,
// every running engine checkpoint-and-stops at its next safe point, and
// the scheduler exits. Jobs interrupted this way stay pending in the
// journal, so a later New+Start over the same store resumes them — Close
// is the daemon's SIGTERM path, distinguishable from a crash only by
// being polite about it.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for _, j := range s.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	close(s.closeCh)
	<-s.loopDone
	return nil
}

// crashForTest simulates kill -9 for in-process tests: journal writes and
// state transitions freeze exactly where they are, and running engines are
// torn down through their contexts — their run ledgers stay dirty, as
// after a real kill, so a fresh supervisor over the same store must
// recover every unfinished job. (The true-SIGKILL drill, where even the
// checkpoint-and-stop courtesy is denied, lives in the cmd/ppserve e2e
// test.)
func (s *Supervisor) crashForTest() {
	s.mu.Lock()
	s.crashed = true
	for _, j := range s.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	close(s.closeCh)
	<-s.loopDone
}

// runJob is one launch of one job: instantiate the workload, build the
// engine over the job's namespaced store, run it, classify the outcome.
func (s *Supervisor) runJob(j *job, ctx context.Context, units int) {
	defer s.wg.Done()
	defer s.kickSched()
	err := s.runEngine(j, ctx, units)

	s.mu.Lock()
	defer s.mu.Unlock()
	j.alloc, j.pending, j.cancel = 0, 0, nil
	if j.eng != nil {
		rep := j.eng.Report()
		j.report = &rep
		j.eng = nil
	}
	if s.crashed {
		return // the "dead" daemon records nothing
	}
	var stop *pp.ErrStopped
	switch {
	case err == nil:
		j.state = Done
		j.result = j.inst.Result()
		close(j.done)
	case errors.As(err, &stop):
		if j.stopReq {
			j.state = Stopped
			close(j.done)
		} else {
			// The engine parked itself without a user Stop: supervisor
			// shutdown, or a workload-internal checkpoint-and-stop. The
			// job is suspended, not finished — back to the queue (where a
			// closed supervisor leaves it for the next Start to resume).
			j.state = Queued
		}
	default:
		j.state = Failed
		j.err = err
		close(j.done)
	}
	j.inst = nil
	if err := s.saveJournalLocked(); err != nil {
		s.logf("fleet: journalling job %d (%s): %v", j.id, j.state, err)
	}
}

func (s *Supervisor) runEngine(j *job, ctx context.Context, units int) error {
	s.mu.Lock()
	w := s.workloads[j.spec.Workload]
	spec := j.spec
	s.mu.Unlock()
	if w == nil {
		return fmt.Errorf("fleet: unknown workload %q", spec.Workload)
	}
	inst, err := w(spec)
	if err != nil {
		return err
	}
	store, err := s.jobStore(spec.Tenant, j.id)
	if err != nil {
		return err
	}
	threads, procs := spec.Threads, spec.Procs
	if spec.malleable() {
		threads = units / spec.Procs
	}
	if spec.elastic() {
		procs = units / spec.Threads
	}
	every := spec.CheckpointEvery
	if every == 0 {
		every = s.cfg.CheckpointEvery
	}
	eng, err := pp.New(inst.Factory,
		pp.WithName("job"),
		pp.WithMode(spec.Mode),
		pp.WithThreads(threads),
		pp.WithProcs(procs),
		pp.WithModules(inst.Modules...),
		pp.WithStore(store),
		pp.WithCheckpointEvery(every),
		pp.WithAdaptNotify(func(sp uint64, mode pp.Mode, threads, procs int) {
			s.resizeApplied(j, threads*procs)
		}),
	)
	if err != nil {
		return err
	}
	s.mu.Lock()
	j.eng = eng
	j.inst = inst
	s.mu.Unlock()
	return eng.RunContext(ctx)
}

// jobStore namespaces the shared store twice — tenant, then job — so the
// final keys read "<tenant>~j<id>~job...": per-tenant isolation with
// per-job isolation inside it.
func (s *Supervisor) jobStore(tenant string, id int64) (pp.Store, error) {
	ts, err := pp.NamespacedStore(tenant, s.cfg.Store)
	if err != nil {
		return nil, err
	}
	return pp.NamespacedStore(fmt.Sprintf("j%d", id), ts)
}
