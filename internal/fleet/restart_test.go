package fleet

import (
	"testing"

	"ppar/pp"
)

// drillSpecs is the mixed workload set for the crash-restart drill: nine
// jobs across three tenants covering every stock workload, sequential and
// parallel shapes, a malleable job, and a distributed world — all with
// tight checkpoint cadences so an interruption always lands mid-run with
// state on disk.
func drillSpecs() []JobSpec {
	return []JobSpec{
		{Tenant: "acme", Workload: "sor", Params: map[string]int{"n": 20, "iters": 10}, CheckpointEvery: 1},
		{Tenant: "acme", Workload: "slow", Mode: pp.Shared, Threads: 2, MinThreads: 1,
			Params: map[string]int{"cells": 200, "blocks": 40, "delay_us": 500}, CheckpointEvery: 1},
		{Tenant: "acme", Workload: "crypt", Params: map[string]int{"n": 1024}, CheckpointEvery: 1},
		{Tenant: "beta", Workload: "md", Params: map[string]int{"n": 12, "steps": 10}, CheckpointEvery: 2},
		{Tenant: "beta", Workload: "ea", Params: map[string]int{"dim": 4, "pop": 16, "gens": 10, "seed": 7}, CheckpointEvery: 2},
		{Tenant: "beta", Workload: "slow",
			Params: map[string]int{"cells": 150, "blocks": 30, "delay_us": 500}, CheckpointEvery: 1},
		{Tenant: "gamma", Workload: "sor", Mode: pp.Distributed, Procs: 2,
			Params: map[string]int{"n": 16, "iters": 12}, CheckpointEvery: 2},
		{Tenant: "gamma", Workload: "ea", Mode: pp.Shared, Threads: 2,
			Params: map[string]int{"dim": 4, "pop": 16, "gens": 10, "seed": 9}, CheckpointEvery: 2},
		{Tenant: "gamma", Workload: "slow", Mode: pp.Shared, Threads: 2,
			Params: map[string]int{"cells": 100, "blocks": 20, "delay_us": 500}, CheckpointEvery: 1},
	}
}

// The crash-restart acceptance drill: a fleet with nine jobs in mixed
// states (done, running, stopping, queued) "dies" mid-flight; a fresh
// supervisor over the same store re-admits every unfinished journal entry,
// each interrupted engine resumes from its newest checkpoint, and every
// completed job's digest is byte-identical to an uninterrupted fleet run.
func TestFleetCrashRestartDrill(t *testing.T) {
	specs := drillSpecs()

	// Reference: the same fleet, never interrupted.
	control := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 3})
	defer control.Close()
	var ctrlIDs []int64
	for _, sp := range specs {
		id, err := control.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ctrlIDs = append(ctrlIDs, id)
	}
	if err := control.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(specs))
	for i, id := range ctrlIDs {
		st, _ := control.Job(id)
		if st.State != Done || st.Result == "" {
			t.Fatalf("control job %d (%s): state=%s error=%q", id, specs[i].Workload, st.State, st.Error)
		}
		want[i] = st.Result
	}

	// The drill fleet: same specs over a store that will survive the crash.
	store := pp.NewMemStore()
	drill := newTestSupervisor(t, Config{Store: store, Budget: 3})
	var ids []int64
	for _, sp := range specs {
		id, err := drill.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Let the fleet reach a mixed moment: some job running with at least
	// one checkpoint on disk, while others still queue behind the budget.
	waitFor(t, "a checkpointed running job alongside a queued one", func() bool {
		st := drill.Status()
		running, queued := false, false
		for _, j := range st.Jobs {
			if j.State == Running && j.Report != nil && j.Report.Checkpoints >= 1 {
				running = true
			}
			if j.State == Queued {
				queued = true
			}
		}
		return running && queued
	})

	// Stop one running slow job so the crash lands mid-Stopping: the stop
	// was never acknowledged, so the crashed daemon must forget it and
	// resume the job.
	stopped := false
	for _, j := range drill.Status().Jobs {
		if j.State == Running && j.Workload == "slow" {
			if err := drill.Stop(j.ID); err == nil {
				stopped = true
				break
			}
		}
	}
	if !stopped {
		t.Fatal("no running slow job to stop before the crash")
	}
	drill.crashForTest()

	// The frozen pre-crash picture: every non-terminal job must come back.
	frozen := drill.Status()
	expect := 0
	sawQueued := false
	for _, j := range frozen.Jobs {
		if !terminal(j.State) {
			expect++
		}
		if j.State == Queued {
			sawQueued = true
		}
	}
	if expect == 0 || !sawQueued {
		t.Fatalf("crash caught no mixed states: %+v", frozen.Jobs)
	}

	// Recovery: a fresh supervisor over the same store.
	after := newTestSupervisor(t, Config{Store: store, Budget: 3})
	defer after.Close()
	// Start already ran inside newTestSupervisor; its recovery count is
	// checked through the journal instead: every unfinished job is queued.
	recovered := 0
	for _, j := range after.Status().Jobs {
		if !terminal(j.State) {
			recovered++
		}
	}
	if recovered != expect {
		t.Fatalf("recovered %d jobs, want %d (frozen: %+v)", recovered, expect, frozen.Jobs)
	}
	if err := after.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}

	resumed := 0
	for i, id := range ids {
		st, ok := after.Job(id)
		if !ok {
			t.Fatalf("job %d vanished across the crash", id)
		}
		// A stop acknowledged in the instant before the crash is journalled
		// Stopped and legitimately stays that way; everything else must
		// complete with the control digest.
		if wasStopped(frozen, id) {
			if st.State != Stopped {
				t.Errorf("job %d was journalled stopped but recovered as %s", id, st.State)
			}
			continue
		}
		if st.State != Done {
			t.Errorf("job %d (%s): state=%s error=%q", id, specs[i].Workload, st.State, st.Error)
			continue
		}
		if st.Result != want[i] {
			t.Errorf("job %d (%s): result %q differs from uninterrupted run %q",
				id, specs[i].Workload, st.Result, want[i])
		}
		if st.Report != nil && st.Report.Restarted {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("no recovered job resumed from a checkpoint (all re-ran from scratch)")
	}
}

// wasStopped reports whether the frozen pre-crash status shows the job as
// terminally stopped (its stop was acknowledged before the crash).
func wasStopped(st Status, id int64) bool {
	for _, j := range st.Jobs {
		if j.ID == id {
			return j.State == Stopped
		}
	}
	return false
}

// Start's recovered count is the journal's pending-entry count: verified
// here against a supervisor closed gracefully mid-flight (the SIGTERM
// path), where interrupted jobs park back to Queued and stay pending.
func TestFleetCloseResume(t *testing.T) {
	store := pp.NewMemStore()
	s := newTestSupervisor(t, Config{Store: store, Budget: 2})
	id, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared, Threads: 2,
		Params: map[string]int{"cells": 400, "blocks": 80, "delay_us": 1000}, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job checkpointed", func() bool {
		st, _ := s.Job(id)
		return st.State == Running && st.Report != nil && st.Report.Checkpoints >= 1
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Job(id); terminal(st.State) {
		t.Fatalf("gracefully interrupted job ended as %s, want suspended", st.State)
	}

	s2, err := New(Config{Store: store, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	s2.Register("slow", slowWorkload)
	recovered, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if recovered != 1 {
		t.Fatalf("recovered %d jobs after graceful close, want 1", recovered)
	}
	st, err := s2.WaitJob(testCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.Result != slowWant(400) {
		t.Fatalf("resumed job: state=%s result=%q (%s)", st.State, st.Result, st.Error)
	}
	if st.Report == nil || !st.Report.Restarted {
		t.Error("resumed job did not restart from its checkpoint")
	}
}
