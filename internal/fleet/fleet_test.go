package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ppar/pp"
)

// slowApp is the test workload: the pp_test counter (accumulate i² over a
// partitioned range, one safe point per block) with a per-cell sleep, so
// tests can pin jobs in the Running state long enough to observe
// scheduling decisions at any thread count.
type slowApp struct {
	Out    []float64
	Blocks int

	delay time.Duration
	total *float64
}

func (c *slowApp) Main(ctx *pp.Ctx) {
	ctx.Call("run", c.run)
	ctx.Call("report", func(ctx *pp.Ctx) {
		sum := 0.0
		for _, v := range c.Out {
			sum += v
		}
		*c.total = sum
	})
}

func (c *slowApp) run(ctx *pp.Ctx) {
	n := len(c.Out)
	per := n / c.Blocks
	for b := 0; b < c.Blocks; b++ {
		lo, hi := b*per, (b+1)*per
		if b == c.Blocks-1 {
			hi = n
		}
		pp.ForSpan(ctx, "cells", lo, hi, func(a, z int) {
			for i := a; i < z; i++ {
				if c.delay > 0 {
					time.Sleep(c.delay)
				}
				c.Out[i] = float64(i) * float64(i)
			}
		})
		ctx.Call("block", func(*pp.Ctx) {})
	}
}

func slowModules(mode pp.Mode) []*pp.Module {
	par := pp.NewModule("slow/par").
		ParallelMethod("run").
		PartitionedField("Out", pp.Block).
		LoopPartition("cells", "Out").
		GatherAfter("run", "Out").
		OnMaster("report").
		LoopSchedule("cells", pp.Dynamic, 1)
	ck := pp.NewModule("slow/ckpt").
		SafeData("Out").
		SafePointAfter("block")
	if mode == pp.Sequential {
		return []*pp.Module{ck}
	}
	return []*pp.Module{par, ck}
}

// slowWorkload instantiates slowApp from spec params: cells (40), blocks
// (10), delay_us (0).
func slowWorkload(spec JobSpec) (*Instance, error) {
	blocks := param(spec, "blocks", 10)
	cells := param(spec, "cells", 40)
	delay := time.Duration(param(spec, "delay_us", 0)) * time.Microsecond
	if blocks < 1 || cells < blocks {
		return nil, fmt.Errorf("fleet test: bad slow params blocks=%d cells=%d", blocks, cells)
	}
	var total float64
	return &Instance{
		Factory: func() pp.App {
			return &slowApp{Out: make([]float64, cells), Blocks: blocks, delay: delay, total: &total}
		},
		Modules: slowModules(spec.Mode),
		Result:  func() string { return fmt.Sprintf("total=%.12e", total) },
	}, nil
}

func slowWant(cells int) string {
	sum := 0.0
	for i := 0; i < cells; i++ {
		sum += float64(i) * float64(i)
	}
	return fmt.Sprintf("total=%.12e", sum)
}

// newTestSupervisor builds, registers and starts a supervisor over the
// given store, failing the test on any error.
func newTestSupervisor(t *testing.T, cfg Config) *Supervisor {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	StockWorkloads(s)
	s.Register("slow", slowWorkload)
	if _, err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFleetRunsStockWorkloads(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 8})
	defer s.Close()
	specs := []JobSpec{
		{Tenant: "alice", Workload: "sor", Params: map[string]int{"n": 16, "iters": 8}},
		{Tenant: "alice", Workload: "crypt", Params: map[string]int{"n": 512}},
		{Tenant: "bob", Workload: "md", Params: map[string]int{"n": 8, "steps": 4}},
		{Tenant: "bob", Workload: "ea", Params: map[string]int{"dim": 4, "pop": 16, "gens": 4}},
		{Tenant: "bob", Workload: "slow", Mode: pp.Shared, Threads: 2},
	}
	var ids []int64
	for _, sp := range specs {
		id, err := s.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %d vanished", id)
		}
		if st.State != Done || st.Result == "" {
			t.Errorf("%s: state=%s result=%q error=%q", specs[i].Workload, st.State, st.Result, st.Error)
		}
	}
	if st, _ := s.Job(ids[4]); st.Result != slowWant(40) {
		t.Errorf("slow smp result %q, want %q", st.Result, slowWant(40))
	}
}

// A fleet result must match the same workload run bare through pp.New —
// hosting adds namespacing and scheduling, never a different answer.
func TestFleetMatchesBareRun(t *testing.T) {
	inst, err := SORWorkload(JobSpec{Tenant: "x", Workload: "sor", Mode: pp.Sequential,
		Params: map[string]int{"n": 16, "iters": 8}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pp.New(inst.Factory, pp.WithModules(inst.Modules...))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bare := inst.Result()

	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 2})
	defer s.Close()
	id, err := s.Submit(JobSpec{Tenant: "x", Workload: "sor", Params: map[string]int{"n": 16, "iters": 8}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.WaitJob(testCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result != bare {
		t.Fatalf("fleet result %q, bare result %q", st.Result, bare)
	}
}

// Many engines, one mem store, adversarial tenant names ("t1" vs "t10"):
// checkpoints every safe point from concurrently running jobs must never
// cross-contaminate, and every job must land on the exact digest. Run
// under -race this also exercises the supervisor's locking.
func TestFleetNamespaceIsolation(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 16, CheckpointEvery: 1})
	defer s.Close()
	var ids []int64
	for i := 0; i < 4; i++ {
		for _, tenant := range []string{"t1", "t10"} {
			id, err := s.Submit(JobSpec{Tenant: tenant, Workload: "slow", Mode: pp.Shared, Threads: 2,
				Params: map[string]int{"cells": 60, "blocks": 12}})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	if err := s.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	want := slowWant(60)
	for _, id := range ids {
		st, _ := s.Job(id)
		if st.State != Done || st.Result != want {
			t.Errorf("job %d (%s): state=%s result=%q want %q", id, st.Tenant, st.State, st.Result, want)
		}
	}
}

func TestFleetStopQueuedAndRunning(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 1, CheckpointEvery: 2})
	defer s.Close()
	running, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow",
		Params: map[string]int{"cells": 200, "blocks": 100, "delay_us": 2000}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job running", func() bool {
		st, _ := s.Job(running)
		return st.State == Running
	})
	if st, _ := s.Job(queued); st.State != Queued {
		t.Fatalf("second job is %s on a full budget, want queued", st.State)
	}
	if err := s.Stop(queued); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Job(queued); st.State != Stopped {
		t.Fatalf("stopped queued job is %s", st.State)
	}
	if err := s.Stop(running); err != nil {
		t.Fatal(err)
	}
	st, err := s.WaitJob(testCtx(t), running)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Stopped {
		t.Fatalf("stopped running job ended as %s (%s)", st.State, st.Error)
	}
	if err := s.Stop(running); err == nil {
		t.Fatal("stopping a finished job must error")
	}
}

func TestFleetSubmitValidation(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 4})
	defer s.Close()
	cases := []JobSpec{
		{Tenant: "bad~tenant", Workload: "sor"},
		{Tenant: "", Workload: "sor"},
		{Tenant: "a", Workload: "no-such-workload"},
		{Tenant: "a", Workload: "sor", Mode: pp.Shared, Threads: 8}, // over budget, rigid
		{Tenant: "a", Workload: "sor", Mode: pp.Shared, Threads: 8, MinThreads: 6},
	}
	for _, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	// A malleable job whose floor fits is accepted even though its desired
	// size exceeds the budget headroom at submit time.
	if _, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared,
		Threads: 8, MinThreads: 2}); err != nil {
		t.Errorf("malleable job with fitting floor rejected: %v", err)
	}
}
