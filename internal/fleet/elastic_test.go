package fleet

import (
	"testing"

	"ppar/pp"
)

// A live budget cut squeezes a malleable runner in place (no relaunch),
// and restoring the budget grows it back — the fleet face of the same
// RequestAdapt machinery the autoscaler drives.
func TestFleetSetBudgetSqueezesMalleable(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 8, CheckpointEvery: 4})
	defer s.Close()
	id, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared,
		Threads: 8, MinThreads: 2,
		Params: map[string]int{"cells": 1000, "blocks": 200, "delay_us": 1500}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to own the full budget", func() bool {
		st, _ := s.Job(id)
		return st.State == Running && st.Alloc == 8
	})

	s.SetBudget(3)
	waitFor(t, "in-place shrink to the new budget", func() bool {
		st, _ := s.Job(id)
		return st.State == Running && st.Alloc == 3
	})

	s.SetBudget(8)
	waitFor(t, "growth back to the restored budget", func() bool {
		st, _ := s.Job(id)
		return st.Alloc == 8 || st.State == Done
	})

	st, err := s.WaitJob(testCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.Result != slowWant(1000) {
		t.Fatalf("squeezed job: state=%s result=%q (%s)", st.State, st.Result, st.Error)
	}
	if st.Report == nil || !st.Report.Adapted {
		t.Fatal("budget squeeze was not an in-place adaptation")
	}
	if st.Report.Restarted {
		t.Fatal("malleable job relaunched instead of resizing in place")
	}
}

// An elastic Distributed job submitted into a tight budget launches below
// its desired world size instead of queueing forever, and still lands on
// the exact digest.
func TestFleetElasticLaunchesBelowDesired(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 2})
	defer s.Close()
	id, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Distributed,
		Procs: 4, MinProcs: 2,
		Params: map[string]int{"cells": 120, "blocks": 24, "delay_us": 200}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "elastic job running under the tight budget", func() bool {
		st, _ := s.Job(id)
		return st.State == Running || st.State == Done
	})
	if st, _ := s.Job(id); st.State == Running && st.Alloc != 2 {
		t.Fatalf("elastic job allocated %d units on a budget of 2", st.Alloc)
	}
	st, err := s.WaitJob(testCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.Result != slowWant(120) {
		t.Fatalf("elastic job: state=%s result=%q (%s)", st.State, st.Result, st.Error)
	}
}

// The forced-shrink path end to end: a budget cut below an elastic
// Distributed job's world checkpoint-stops it, requeues it, and relaunches
// it at fewer ranks — the re-sharding restore repartitions its state — and
// the digest still matches an uninterrupted run.
func TestFleetSetBudgetRelaunchesElasticSmaller(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 4})
	defer s.Close()
	id, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Distributed,
		Procs: 4, MinProcs: 2, CheckpointEvery: 1,
		Params: map[string]int{"cells": 600, "blocks": 120, "delay_us": 1000}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "elastic job running at full world with a checkpoint", func() bool {
		st, _ := s.Job(id)
		return st.State == Running && st.Alloc == 4 &&
			st.Report != nil && st.Report.Checkpoints >= 1
	})

	// A node leaves: the world no longer fits. The job cannot resize in
	// place — it must checkpoint-stop and come back smaller.
	s.SetBudget(2)
	waitFor(t, "relaunch at the shrunken world", func() bool {
		st, _ := s.Job(id)
		return st.State == Running && st.Alloc == 2
	})

	st, err := s.WaitJob(testCtx(t), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != Done || st.Result != slowWant(600) {
		t.Fatalf("relaunched job: state=%s result=%q (%s)", st.State, st.Result, st.Error)
	}
	if st.Report == nil || !st.Report.Restarted {
		t.Fatal("shrunken relaunch did not resume from a checkpoint (re-ran from scratch)")
	}
}

// Budget eviction prefers the cheap lever: when shrinking malleable
// runners in place covers the cut, no job is suspended.
func TestFleetSetBudgetPrefersInPlaceShrink(t *testing.T) {
	s := newTestSupervisor(t, Config{Store: pp.NewMemStore(), Budget: 6})
	defer s.Close()
	mal, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared,
		Threads: 4, MinThreads: 1, Priority: 0,
		Params: map[string]int{"cells": 800, "blocks": 160, "delay_us": 1500}})
	if err != nil {
		t.Fatal(err)
	}
	rigid, err := s.Submit(JobSpec{Tenant: "a", Workload: "slow", Mode: pp.Shared,
		Threads: 2, Priority: 1,
		Params: map[string]int{"cells": 400, "blocks": 80, "delay_us": 1500}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both jobs running", func() bool {
		m, _ := s.Job(mal)
		r, _ := s.Job(rigid)
		return m.State == Running && m.Alloc == 4 && r.State == Running
	})

	s.SetBudget(3)
	waitFor(t, "malleable job absorbed the whole cut", func() bool {
		m, _ := s.Job(mal)
		return m.Alloc == 1
	})
	if r, _ := s.Job(rigid); r.State != Running {
		t.Fatalf("rigid job was evicted despite an in-place escape: %s", r.State)
	}
	if err := s.Drain(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{mal, rigid} {
		if st, _ := s.Job(id); st.State != Done {
			t.Errorf("job %d: %s (%s)", id, st.State, st.Error)
		}
	}
}
