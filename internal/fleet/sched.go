package fleet

import (
	"context"
	"math"
	"sort"

	"ppar/pp"
)

// The scheduler is event-driven: anything that changes the budget picture
// (a submission, a completion, a stop, a resize landing) kicks the loop,
// which replans under the supervisor lock. Planning is cheap — the fleet
// is bounded by the machine budget, not by queue length — so there is no
// incremental state to keep consistent: every kick recomputes from the job
// table.
func (s *Supervisor) loop() {
	defer close(s.loopDone)
	for {
		select {
		case <-s.kick:
			s.mu.Lock()
			s.scheduleLocked()
			s.mu.Unlock()
		case <-s.closeCh:
			return
		}
	}
}

// kickSched nudges the scheduler without blocking (the channel holds one
// pending kick; coalescing more is harmless since planning is idempotent).
func (s *Supervisor) kickSched() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// resizeApplied is the engine's OnAdapt callback: a requested resize
// landed at a safe point, so the job's occupancy becomes real and any
// freed budget can be handed out.
func (s *Supervisor) resizeApplied(j *job, units int) {
	s.mu.Lock()
	if j.state == Running || j.state == Stopping {
		j.alloc = units
		j.pending = 0
	}
	s.mu.Unlock()
	s.kickSched()
}

// usedLocked is the budget currently spoken for: a shrinking job occupies
// its old allocation until the resize lands, a growing one reserves the
// new allocation immediately.
func (s *Supervisor) usedLocked() int {
	used := 0
	for _, j := range s.jobs {
		if j.state == Running || j.state == Stopping {
			used += j.occupied()
		}
	}
	return used
}

// scheduleLocked replans admissions and resizes. Queued jobs are admitted
// in strict priority order (FIFO within a class) with head-of-line
// blocking: when the best queued job cannot start, lower-priority jobs do
// not leapfrog it — instead lower-priority malleable runners are shrunk
// toward their floors to make room, and the loop waits for those resizes
// to land. Only when every queued job is placed does spare budget flow
// back to starved malleable runners.
func (s *Supervisor) scheduleLocked() {
	if !s.started || s.crashed || s.closed {
		return
	}
	free := s.cfg.Budget - s.usedLocked()
	for _, j := range s.queuedByPriorityLocked() {
		if s.tenantBlockedLocked(j) {
			continue // quota, not budget: the next tenant's jobs still flow
		}
		want := j.desired()
		if tcap := s.tenantUnitCapLocked(j.spec.Tenant); tcap < want {
			want = tcap // >= j.min(), guaranteed by tenantBlockedLocked
		}
		switch {
		case free >= want:
			s.launchLocked(j, want)
			free -= want
		case (j.spec.malleable() || j.spec.elastic()) && free >= j.min():
			s.launchLocked(j, free)
			free = 0
		default:
			s.reclaimLocked(j.spec.Priority, j.min()-free)
			return // head-of-line: wait for the reclaimed budget to land
		}
	}
	s.growLocked(free)
}

// reclaimLocked shrinks lower-priority malleable runners toward their
// floors until need units are on their way back. Lowest priority loses
// first; within a class the most recently admitted shrinks first. The
// freed budget only becomes allocatable when each engine applies its
// resize at a safe point and OnAdapt reports in.
func (s *Supervisor) reclaimLocked(pri, need int) {
	if need <= 0 {
		return
	}
	victims := s.runningLocked()
	sort.SliceStable(victims, func(a, b int) bool {
		if victims[a].spec.Priority != victims[b].spec.Priority {
			return victims[a].spec.Priority < victims[b].spec.Priority
		}
		return victims[a].id > victims[b].id
	})
	for _, v := range victims {
		if need <= 0 {
			return
		}
		if v.spec.Priority >= pri || !v.spec.malleable() {
			continue
		}
		if v.eng == nil || v.pending != 0 || v.state != Running {
			continue // launching, resizing or stopping: leave it be
		}
		avail := v.alloc - v.min()
		if avail <= 0 {
			continue
		}
		take := min(avail, need)
		s.resizeLocked(v, v.alloc-take)
		need -= take
	}
}

// growLocked hands spare budget back to starved malleable runners, best
// priority first.
func (s *Supervisor) growLocked(free int) {
	if free <= 0 {
		return
	}
	runners := s.runningLocked()
	sort.SliceStable(runners, func(a, b int) bool {
		if runners[a].spec.Priority != runners[b].spec.Priority {
			return runners[a].spec.Priority > runners[b].spec.Priority
		}
		return runners[a].id < runners[b].id
	})
	for _, j := range runners {
		if free <= 0 {
			return
		}
		if !j.spec.malleable() || j.state != Running || j.eng == nil || j.pending != 0 {
			continue
		}
		add := min(j.desired()-j.alloc, free)
		if tcap := s.tenantUnitCapLocked(j.spec.Tenant); add > tcap {
			add = tcap
		}
		if add <= 0 {
			continue
		}
		s.resizeLocked(j, j.alloc+add)
		free -= add
	}
}

// SetBudget changes the machine budget at run time — the elastic coupling
// to cluster churn (cluster.ChurnSim.OnChange calls here when nodes leave
// or arrive). A raised budget flows out through the ordinary scheduling
// pass: queued jobs admit, starved malleable runners grow back. A lowered
// budget triggers evictToBudgetLocked: malleable runners shrink in place
// toward their floors, and if the fleet is still over budget, running jobs
// are checkpoint-stopped lowest priority first. A suspended job keeps its
// journal entry pending, requeues, and relaunches when the budget admits
// it again — elastic Distributed jobs at fewer ranks, with the re-sharding
// restore repartitioning their state under the shrunken world.
func (s *Supervisor) SetBudget(units int) {
	if units < 1 {
		units = 1
	}
	s.mu.Lock()
	if s.closed || s.crashed {
		s.mu.Unlock()
		return
	}
	shrunk := units < s.cfg.Budget
	s.cfg.Budget = units
	if shrunk {
		s.evictToBudgetLocked()
	}
	s.mu.Unlock()
	s.kickSched()
}

// landingLocked is the budget the fleet will occupy once every in-flight
// resize has landed: pending units where a resize is in flight, allocated
// units otherwise. usedLocked (max of the two) guards hand-outs; this
// lower bound decides whether shrinking has already been asked for.
func (s *Supervisor) landingLocked() int {
	t := 0
	for _, j := range s.jobs {
		if j.state != Running && j.state != Stopping {
			continue
		}
		if j.pending != 0 {
			t += j.pending
		} else {
			t += j.alloc
		}
	}
	return t
}

// evictToBudgetLocked brings a fleet that exceeds a freshly lowered budget
// back under it: first malleable runners shrink in place toward their
// floors (the cheap lever), then remaining overflow is evicted by
// checkpoint-stopping running jobs, lowest priority first, most recently
// admitted first. An evicted engine parks at its next safe point and the
// job returns to Queued (the same suspend path Close uses), so no work is
// lost — the relaunch resumes from the newest checkpoint.
func (s *Supervisor) evictToBudgetLocked() {
	over := s.landingLocked() - s.cfg.Budget
	if over <= 0 {
		return
	}
	s.reclaimLocked(math.MaxInt, over)
	over = s.landingLocked() - s.cfg.Budget
	if over <= 0 {
		return
	}
	victims := s.runningLocked()
	sort.SliceStable(victims, func(a, b int) bool {
		if victims[a].spec.Priority != victims[b].spec.Priority {
			return victims[a].spec.Priority < victims[b].spec.Priority
		}
		return victims[a].id > victims[b].id
	})
	for _, v := range victims {
		if over <= 0 {
			return
		}
		if v.state != Running || v.cancel == nil {
			continue // already stopping, or not yet launched
		}
		s.logf("fleet: budget %d: suspending job %d (%d units)", s.cfg.Budget, v.id, v.occupied())
		v.cancel()
		if v.pending != 0 {
			over -= v.pending
		} else {
			over -= v.alloc
		}
	}
}

// resizeLocked asks a running Shared-mode engine to reshape its team at
// the next safe point. Occupancy moves to max(alloc, pending) until the
// engine's OnAdapt confirms the new topology.
func (s *Supervisor) resizeLocked(j *job, units int) {
	j.pending = units
	j.eng.RequestAdapt(pp.AdaptTarget{Threads: units / j.spec.Procs})
}

func (s *Supervisor) launchLocked(j *job, units int) {
	j.state = Running
	j.alloc = units
	j.pending = 0
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	s.wg.Add(1)
	go s.runJob(j, ctx, units)
}

// queuedByPriorityLocked returns the queued jobs, priority descending,
// FIFO within a class.
func (s *Supervisor) queuedByPriorityLocked() []*job {
	var q []*job
	for _, id := range s.order {
		if j := s.jobs[id]; j.state == Queued {
			q = append(q, j)
		}
	}
	sort.SliceStable(q, func(a, b int) bool { return q[a].spec.Priority > q[b].spec.Priority })
	return q
}

func (s *Supervisor) runningLocked() []*job {
	var r []*job
	for _, id := range s.order {
		if j := s.jobs[id]; j.state == Running || j.state == Stopping {
			r = append(r, j)
		}
	}
	return r
}

// tenantBlockedLocked applies the admission-time quotas: a blocked job
// waits in the queue without blocking other tenants.
func (s *Supervisor) tenantBlockedLocked(j *job) bool {
	if s.cfg.TenantMaxJobs <= 0 && s.cfg.TenantMaxUnits <= 0 {
		return false
	}
	jobs, units := 0, 0
	for _, o := range s.jobs {
		if o.spec.Tenant != j.spec.Tenant {
			continue
		}
		if o.state == Running || o.state == Stopping {
			jobs++
			units += o.occupied()
		}
	}
	if s.cfg.TenantMaxJobs > 0 && jobs >= s.cfg.TenantMaxJobs {
		return true
	}
	if s.cfg.TenantMaxUnits > 0 && units+j.min() > s.cfg.TenantMaxUnits {
		return true
	}
	return false
}

// tenantUnitCapLocked is how many more units the tenant may allocate.
func (s *Supervisor) tenantUnitCapLocked(tenant string) int {
	if s.cfg.TenantMaxUnits <= 0 {
		return math.MaxInt
	}
	units := 0
	for _, o := range s.jobs {
		if o.spec.Tenant == tenant && (o.state == Running || o.state == Stopping) {
			units += o.occupied()
		}
	}
	return max(0, s.cfg.TenantMaxUnits-units)
}
