// Package md is a pluggable molecular-dynamics mini-framework in the mould
// of the paper's case study [21] (Silva & Sobral, "Optimising Molecular
// Dynamics with product-lines", VaMoS'11): a velocity-Verlet integrator
// over a user-supplied pair potential, with the force loop as the advisable
// join point. One base simulation deploys sequentially, on a thread team,
// or across aggregate replicas, with pluggable checkpointing of the phase
// space.
package md

import (
	"math"

	"ppar/internal/core"
	"ppar/internal/partition"
	"ppar/internal/team"
)

// Potential is a pure pair potential: given the squared distance it
// returns the force magnitude divided by distance (so F_vec = scale·d_vec)
// and the pair energy. Cut reports the squared cutoff radius.
type Potential interface {
	Name() string
	Cut2() float64
	ForceEnergy(r2 float64) (scale, energy float64)
}

// LennardJones is the 12-6 potential in reduced units.
type LennardJones struct{}

// Name implements Potential.
func (LennardJones) Name() string { return "lennard-jones" }

// Cut2 implements Potential.
func (LennardJones) Cut2() float64 { return 6.25 }

// ForceEnergy implements Potential.
func (LennardJones) ForceEnergy(r2 float64) (float64, float64) {
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	return 24 * inv2 * inv6 * (2*inv6 - 1), 4 * (inv6*inv6 - inv6)
}

// SoftSphere is a purely repulsive r^-12 potential.
type SoftSphere struct{}

// Name implements Potential.
func (SoftSphere) Name() string { return "soft-sphere" }

// Cut2 implements Potential.
func (SoftSphere) Cut2() float64 { return 4 }

// ForceEnergy implements Potential.
func (SoftSphere) ForceEnergy(r2 float64) (float64, float64) {
	inv2 := 1 / r2
	inv6 := inv2 * inv2 * inv2
	inv12 := inv6 * inv6
	return 48 * inv2 * inv12, 4 * inv12
}

// Observables receives the master's measurements after the run.
type Observables struct {
	Kinetic   float64
	Potential float64
	Momentum  [3]float64
}

// Simulation is the base program.
type Simulation struct {
	// Pos, Vel, Acc are flattened 3N phase-space arrays (safe data).
	Pos []float64
	Vel []float64
	Acc []float64
	// AtomIndex drives the particle loop's distribution (cyclic, aligned
	// with the coordinate arrays' block-cyclic(3) layout).
	AtomIndex []int

	N     int
	Steps int
	Dt    float64
	Box   float64

	pot    Potential
	Result *Observables
}

// New builds a simulation of n atoms for the given potential on a perturbed
// lattice (deterministic).
func New(pot Potential, n, steps int, res *Observables) *Simulation {
	s := &Simulation{N: n, Steps: steps, Dt: 0.001, pot: pot, Result: res}
	side := int(math.Ceil(math.Cbrt(float64(n))))
	s.Box = float64(side) * 1.4
	s.Pos = make([]float64, 3*n)
	s.Vel = make([]float64, 3*n)
	s.Acc = make([]float64, 3*n)
	s.AtomIndex = make([]int, n)
	r := uint64(2024)
	next := func() float64 {
		r = r*6364136223846793005 + 1442695040888963407
		return float64(r>>11) / float64(1<<53)
	}
	i := 0
	for x := 0; x < side && i < n; x++ {
		for y := 0; y < side && i < n; y++ {
			for z := 0; z < side && i < n; z++ {
				s.Pos[3*i] = (float64(x) + 0.2*next()) * 1.4
				s.Pos[3*i+1] = (float64(y) + 0.2*next()) * 1.4
				s.Pos[3*i+2] = (float64(z) + 0.2*next()) * 1.4
				for d := 0; d < 3; d++ {
					s.Vel[3*i+d] = 0.05 * (next() - 0.5)
				}
				s.AtomIndex[i] = i
				i++
			}
		}
	}
	return s
}

// Main runs the simulation then measures observables.
func (s *Simulation) Main(ctx *core.Ctx) {
	ctx.Call("md2.run", s.run)
	ctx.Call("md2.finish", s.finish)
}

func (s *Simulation) run(ctx *core.Ctx) {
	ctx.Call("md2.forces", s.forces)
	for step := 0; step < s.Steps; step++ {
		ctx.Call("md2.drift", s.drift)
		ctx.Call("md2.forces", s.forces)
		ctx.Call("md2.kick", s.kick)
		ctx.Call("md2.step", func(*core.Ctx) {})
	}
}

func (s *Simulation) minImage(d float64) float64 {
	if d > s.Box/2 {
		return d - s.Box
	}
	if d < -s.Box/2 {
		return d + s.Box
	}
	return d
}

func (s *Simulation) forces(ctx *core.Ctx) {
	cut2 := s.pot.Cut2()
	core.For(ctx, "md2.atoms", 0, s.N, func(i int) {
		var ax, ay, az float64
		xi, yi, zi := s.Pos[3*i], s.Pos[3*i+1], s.Pos[3*i+2]
		for j := 0; j < s.N; j++ {
			if j == i {
				continue
			}
			dx := s.minImage(xi - s.Pos[3*j])
			dy := s.minImage(yi - s.Pos[3*j+1])
			dz := s.minImage(zi - s.Pos[3*j+2])
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 || r2 > cut2 {
				continue
			}
			f, _ := s.pot.ForceEnergy(r2)
			ax += f * dx
			ay += f * dy
			az += f * dz
		}
		s.Acc[3*i], s.Acc[3*i+1], s.Acc[3*i+2] = ax, ay, az
	})
}

func (s *Simulation) drift(ctx *core.Ctx) {
	dt := s.Dt
	core.For(ctx, "md2.atoms", 0, s.N, func(i int) {
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] += 0.5 * dt * s.Acc[3*i+d]
			s.Pos[3*i+d] += dt * s.Vel[3*i+d]
			if s.Pos[3*i+d] >= s.Box {
				s.Pos[3*i+d] -= s.Box
			} else if s.Pos[3*i+d] < 0 {
				s.Pos[3*i+d] += s.Box
			}
		}
	})
}

func (s *Simulation) kick(ctx *core.Ctx) {
	dt := s.Dt
	core.For(ctx, "md2.atoms", 0, s.N, func(i int) {
		for d := 0; d < 3; d++ {
			s.Vel[3*i+d] += 0.5 * dt * s.Acc[3*i+d]
		}
	})
}

func (s *Simulation) finish(ctx *core.Ctx) {
	if s.Result == nil {
		return
	}
	var obs Observables
	for i := 0; i < s.N; i++ {
		for d := 0; d < 3; d++ {
			v := s.Vel[3*i+d]
			obs.Kinetic += 0.5 * v * v
			obs.Momentum[d] += v
		}
	}
	cut2 := s.pot.Cut2()
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			dx := s.minImage(s.Pos[3*i] - s.Pos[3*j])
			dy := s.minImage(s.Pos[3*i+1] - s.Pos[3*j+1])
			dz := s.minImage(s.Pos[3*i+2] - s.Pos[3*j+2])
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 || r2 > cut2 {
				continue
			}
			_, e := s.pot.ForceEnergy(r2)
			obs.Potential += e
		}
	}
	*s.Result = obs
}

// SharedModule plugs the thread-team deployment.
func SharedModule() *core.Module {
	return core.NewModule("md2/smp").
		ParallelMethod("md2.run").
		LoopSchedule("md2.atoms", team.Static, 1)
}

// DistModule plugs the aggregate deployment: owner-computed updates with a
// full position re-sync after each drift.
func DistModule() *core.Module {
	return core.NewModule("md2/dist").
		PartitionedBlockCyclic("Pos", 3).
		PartitionedBlockCyclic("Vel", 3).
		PartitionedBlockCyclic("Acc", 3).
		PartitionedField("AtomIndex", partition.Cyclic).
		LoopPartition("md2.atoms", "AtomIndex").
		AllGatherAfter("md2.drift", "Pos").
		GatherAfter("md2.run", "Pos", "Vel").
		OnMaster("md2.finish")
}

// CheckpointModule plugs fault tolerance: a safe point per time step.
func CheckpointModule() *core.Module {
	return core.NewModule("md2/ckpt").
		SafeData("Pos", "Vel", "Acc").
		SafePointAfter("md2.step").
		Ignorable("md2.forces", "md2.drift", "md2.kick")
}

// Modules assembles the module list for a mode.
func Modules(mode core.Mode) []*core.Module {
	switch mode {
	case core.Sequential:
		return []*core.Module{CheckpointModule()}
	case core.Shared:
		return []*core.Module{SharedModule(), CheckpointModule()}
	case core.Distributed:
		return []*core.Module{DistModule(), CheckpointModule()}
	case core.Hybrid, core.Task:
		return []*core.Module{SharedModule(), DistModule(), CheckpointModule()}
	}
	return nil
}
