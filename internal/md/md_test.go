package md

import (
	"errors"
	"math"
	"testing"

	"ppar/internal/core"
)

func runSim(t *testing.T, cfg core.Config, pot Potential, n, steps int) *Observables {
	t.Helper()
	res := &Observables{}
	cfg.AppName = "md2-" + pot.Name()
	if cfg.Modules == nil {
		cfg.Modules = Modules(cfg.Mode)
	}
	eng, err := core.New(cfg, func() core.App { return New(pot, n, steps, res) })
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllModesAgree(t *testing.T) {
	for _, pot := range []Potential{LennardJones{}, SoftSphere{}} {
		ref := runSim(t, core.Config{Mode: core.Sequential}, pot, 27, 5)
		for _, cfg := range []core.Config{
			{Mode: core.Shared, Threads: 3},
			{Mode: core.Distributed, Procs: 3},
			{Mode: core.Hybrid, Procs: 2, Threads: 2},
		} {
			got := runSim(t, cfg, pot, 27, 5)
			if got.Kinetic != ref.Kinetic || got.Potential != ref.Potential {
				t.Errorf("%s %v: E=(%v,%v) want (%v,%v)",
					pot.Name(), cfg.Mode, got.Kinetic, got.Potential, ref.Kinetic, ref.Potential)
			}
		}
	}
}

func TestEnergyRoughlyConserved(t *testing.T) {
	short := runSim(t, core.Config{Mode: core.Sequential}, LennardJones{}, 27, 1)
	long := runSim(t, core.Config{Mode: core.Sequential}, LennardJones{}, 27, 50)
	e0 := short.Kinetic + short.Potential
	e1 := long.Kinetic + long.Potential
	drift := math.Abs(e1-e0) / math.Max(math.Abs(e0), 1)
	if drift > 0.05 {
		t.Errorf("energy drift %.2f%% over 50 steps", drift*100)
	}
}

func TestCheckpointRestart(t *testing.T) {
	ref := runSim(t, core.Config{Mode: core.Sequential}, LennardJones{}, 27, 12)
	dir := t.TempDir()
	res := &Observables{}
	factory := func() core.App { return New(LennardJones{}, 27, 12, res) }
	cfg := core.Config{
		Mode: core.Distributed, Procs: 3, AppName: "md2-lennard-jones",
		Modules:       Modules(core.Distributed),
		CheckpointDir: dir, CheckpointEvery: 4, FailAtSafePoint: 9,
	}
	eng, _ := core.New(cfg, factory)
	if err := eng.Run(); !errors.Is(err, core.ErrInjectedFailure) {
		t.Fatalf("want failure, got %v", err)
	}
	cfg.FailAtSafePoint = 0
	eng2, _ := core.New(cfg, factory)
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Kinetic != ref.Kinetic || res.Potential != ref.Potential {
		t.Fatalf("restarted E=(%v,%v) want (%v,%v)", res.Kinetic, res.Potential, ref.Kinetic, ref.Potential)
	}
}

func TestPotentialProperties(t *testing.T) {
	lj := LennardJones{}
	// At the minimum r = 2^(1/6), force is ~0 and energy is -1.
	r2 := math.Pow(2, 1.0/3)
	f, e := lj.ForceEnergy(r2)
	if math.Abs(f) > 1e-9 {
		t.Errorf("LJ force at minimum = %v", f)
	}
	if math.Abs(e+1) > 1e-9 {
		t.Errorf("LJ energy at minimum = %v, want -1", e)
	}
	ss := SoftSphere{}
	f2, e2 := ss.ForceEnergy(1)
	if f2 <= 0 || e2 <= 0 {
		t.Errorf("soft sphere not repulsive: f=%v e=%v", f2, e2)
	}
}
