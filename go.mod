module ppar

go 1.23
