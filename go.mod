module ppar

go 1.24
