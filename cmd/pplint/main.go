// Command pplint runs the repo's contract-enforcing static analyzers over
// the module:
//
//	go run ./cmd/pplint ./...
//
// The suite (see internal/analysis) machine-checks the invariants the
// runtime documents in prose: AdaptPolicy.Decide purity (pppure),
// serialization determinism (ppdeterminism), collective completeness
// (ppcollective), store write ordering and atomicity (ppstore), and no
// blocking I/O under the engine/supervisor locks (pplock).
//
// Findings print as file:line:col: [analyzer] message and make the exit
// status 1. A deliberate exception is excused in place — with a reason —
// by a staticcheck-style directive on the offending line or the line
// above:
//
//	//lint:ignore pplock the journal write IS the admission critical section
//
// The -tests flag additionally analyzes in-package _test.go files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ppar/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("pplint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, fset, err := analysis.Load("", patterns, *tests)
	if err != nil {
		fmt.Fprintf(errOut, "pplint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(analysis.All(), fset, pkgs)
	if err != nil {
		fmt.Fprintf(errOut, "pplint: %v\n", err)
		return 2
	}

	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "pplint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
