// Command ppsor runs the JGF SOR benchmark under any deployment of the
// pluggable-parallelisation engine, with checkpointing (through any of the
// pluggable backends), failure injection and run-time adaptation available
// from the command line:
//
//	ppsor -mode seq -n 500 -iters 100
//	ppsor -mode smp -threads 8
//	ppsor -mode dist -procs 4 -ckpt /tmp/ck -every 10
//	ppsor -mode dist -procs 4 -ckpt /tmp/ck -every 10 -fail 25   # then re-run to recover
//	ppsor -mode dist -procs 4 -ckpt /tmp/ck -store gzip -every 10
//	ppsor -mode smp -threads 8 -ckpt /tmp/ck -every 10 -async     # non-blocking saves
//	ppsor -mode smp -threads 8 -ckpt /tmp/ck -every 10 -delta     # incremental saves
//	ppsor -mode smp -threads 4 -store mem -every 10 -stop-at 26  # stop+restart, no filesystem
//	ppsor -mode smp -threads 2 -adapt-at 50 -adapt-threads 8
//	ppsor -mode smp -threads 4 -adapt-at 50 -adapt-mode dist -adapt-procs 4  # live smp->dist migration
//	ppsor -mode dist -procs 2 -ckpt /tmp/ck -stop-at 26          # checkpoint & stop; re-run wider
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ppar/internal/jgf"
	"ppar/pp"
)

func main() { os.Exit(run()) }

func run() int {
	mode := flag.String("mode", "seq", "deployment: seq | smp | dist | hybrid")
	n := flag.Int("n", 500, "grid size")
	iters := flag.Int("iters", 100, "iterations")
	threads := flag.Int("threads", 4, "team size (smp/hybrid)")
	procs := flag.Int("procs", 4, "world size (dist/hybrid)")
	tcp := flag.Bool("tcp", false, "use the TCP transport")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (enables checkpointing)")
	storeKind := flag.String("store", "fs", "checkpoint backend: fs | mem | gzip (mem and gzip-over-mem enable checkpointing without -ckpt)")
	every := flag.Uint64("every", 0, "checkpoint every N safe points")
	async := flag.Bool("async", false, "asynchronous double-buffered checkpointing (capture at the safe point, persist in the background)")
	delta := flag.Bool("delta", false, "incremental (delta) checkpointing: persist only changed fields/chunks, compacting every -compact deltas (pays off when much of the state is stable between checkpoints)")
	compact := flag.Int("compact", 8, "with -delta, number of deltas between full snapshots")
	shards := flag.Bool("shards", false, "per-rank shard checkpoints instead of gather-at-master (manifest-committed; composes with -async and -delta, and restarts re-shard into any -mode/-procs)")
	fail := flag.Uint64("fail", 0, "inject a failure at this safe point")
	failRank := flag.Int("fail-rank", 0, "rank that fails")
	stopAt := flag.Uint64("stop-at", 0, "checkpoint and stop at this safe point (adaptation by restart)")
	adaptAt := flag.Uint64("adapt-at", 0, "apply a run-time adaptation at this safe point")
	adaptThreads := flag.Int("adapt-threads", 0, "run-time adaptation target team size")
	adaptProcs := flag.Int("adapt-procs", 0, "run-time adaptation target world size")
	adaptMode := flag.String("adapt-mode", "", "run-time adaptation target mode (seq|smp|dist|hybrid): migrate the run to that deployment in-process at -adapt-at, without restarting")
	flag.Parse()

	m, err := pp.ParseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	target := pp.AdaptTarget{Threads: *adaptThreads, Procs: *adaptProcs}
	if *adaptMode != "" {
		if target.Mode, err = pp.ParseMode(*adaptMode); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if *adaptAt == 0 {
			fmt.Fprintln(os.Stderr, "-adapt-mode needs -adapt-at to pick the migration safe point")
			return 2
		}
	}

	// A migrating run must carry the advice of every mode it may land in
	// (like a cross-mode restart): plug the full hybrid module set when an
	// in-process migration is requested.
	moduleMode := m
	if target.Mode != 0 {
		moduleMode = pp.Hybrid
	}
	opts := []pp.Option{
		pp.WithName("ppsor"),
		pp.WithMode(m),
		pp.WithThreads(*threads),
		pp.WithProcs(*procs),
		pp.WithModules(jgf.SORModules(moduleMode)...),
		pp.WithCheckpointEvery(*every),
		pp.WithFailureAt(*fail, *failRank),
		pp.WithStopAt(*stopAt),
		pp.WithAdaptAt(*adaptAt, target),
	}
	if *tcp {
		opts = append(opts, pp.WithTCP())
	}
	if *shards {
		opts = append(opts, pp.WithShardCheckpoints())
	}
	if *async {
		opts = append(opts, pp.WithAsyncCheckpoint())
	}
	if *delta {
		opts = append(opts, pp.WithDeltaCheckpoint(*every, *compact))
	}
	switch *storeKind {
	case "fs":
		if *ckptDir != "" {
			opts = append(opts, pp.WithCheckpointDir(*ckptDir))
		}
	case "mem":
		// An in-memory store lives only as long as this process: useful
		// with -stop-at/-fail only to measure protocol costs, since a
		// fresh process cannot see the snapshot.
		opts = append(opts, pp.WithStore(pp.NewMemStore()))
	case "gzip":
		var inner pp.Store
		if *ckptDir != "" {
			var err error
			if inner, err = pp.NewFSStore(*ckptDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		} else {
			inner = pp.NewMemStore()
		}
		opts = append(opts, pp.WithStore(pp.NewGzipStore(inner)))
	default:
		fmt.Fprintf(os.Stderr, "unknown -store %q (want fs, mem or gzip)\n", *storeKind)
		return 2
	}

	res := &jgf.SORResult{}
	eng, err := pp.New(func() pp.App { return jgf.NewSOR(*n, *iters, res) }, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	err = eng.Run()
	rep := eng.Report()
	var stopped *pp.ErrStopped
	switch {
	case err == nil:
		fmt.Printf("completed: Gtotal=%.12f safePoints=%d elapsed=%v\n",
			res.Gtotal, rep.SafePoints, rep.Elapsed)
	case errors.As(err, &stopped):
		fmt.Printf("checkpointed and stopped at safe point %d for adaptation by restart\n", stopped.SafePoint)
		return 0
	case errors.Is(err, pp.ErrInjectedFailure):
		fmt.Printf("failed at safe point %d (as requested); re-run to recover from the last checkpoint\n", *fail)
		return 0
	default:
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if rep.Restarted {
		fmt.Printf("recovered from checkpoint: replay=%v load=%v\n", rep.ReplayTime, rep.LoadTotal)
	}
	if rep.Migrations > 0 {
		fmt.Printf("migrated in-process: %d migration(s), now %s, blocked %v\n",
			rep.Migrations, *adaptMode, rep.MigrationTotal)
	} else if rep.Adapted {
		fmt.Println("run-time adaptation applied")
	}
	if rep.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d (%d bytes, save total %v)\n", rep.Checkpoints, rep.SaveBytes, rep.SaveTotal)
	}
	if *async && (rep.Checkpoints > 0 || rep.Superseded > 0) {
		fmt.Printf("async: capture %v, background write %v, drain %v, superseded %d\n",
			rep.CaptureTotal, rep.AsyncSaveTotal, rep.DrainTotal, rep.Superseded)
	}
	if *delta && rep.Checkpoints > 0 {
		fmt.Printf("delta: %d full + %d delta saves, %d delta bytes\n",
			rep.FullSaves, rep.DeltaSaves, rep.DeltaBytes)
	}
	return 0
}
