// Command ppsor runs the JGF SOR benchmark under any deployment of the
// pluggable-parallelisation engine, with checkpointing, failure injection
// and run-time adaptation available from the command line:
//
//	ppsor -mode seq -n 500 -iters 100
//	ppsor -mode smp -threads 8
//	ppsor -mode dist -procs 4 -ckpt /tmp/ck -every 10
//	ppsor -mode dist -procs 4 -ckpt /tmp/ck -every 10 -fail 25   # then re-run to recover
//	ppsor -mode smp -threads 2 -adapt-at 50 -adapt-threads 8
//	ppsor -mode dist -procs 2 -ckpt /tmp/ck -stop-at 26          # checkpoint & stop; re-run wider
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ppar/internal/core"
	"ppar/internal/jgf"
)

func main() { os.Exit(run()) }

func run() int {
	mode := flag.String("mode", "seq", "deployment: seq | smp | dist | hybrid")
	n := flag.Int("n", 500, "grid size")
	iters := flag.Int("iters", 100, "iterations")
	threads := flag.Int("threads", 4, "team size (smp/hybrid)")
	procs := flag.Int("procs", 4, "world size (dist/hybrid)")
	tcp := flag.Bool("tcp", false, "use the TCP transport")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (enables checkpointing)")
	every := flag.Uint64("every", 0, "checkpoint every N safe points")
	shards := flag.Bool("shards", false, "per-rank shard checkpoints instead of gather-at-master")
	fail := flag.Uint64("fail", 0, "inject a failure at this safe point")
	failRank := flag.Int("fail-rank", 0, "rank that fails")
	stopAt := flag.Uint64("stop-at", 0, "checkpoint and stop at this safe point (adaptation by restart)")
	adaptAt := flag.Uint64("adapt-at", 0, "apply a run-time adaptation at this safe point")
	adaptThreads := flag.Int("adapt-threads", 0, "run-time adaptation target team size")
	adaptProcs := flag.Int("adapt-procs", 0, "run-time adaptation target world size")
	flag.Parse()

	var m core.Mode
	switch *mode {
	case "seq":
		m = core.Sequential
	case "smp":
		m = core.Shared
	case "dist":
		m = core.Distributed
	case "hybrid":
		m = core.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		return 2
	}

	res := &jgf.SORResult{}
	cfg := core.Config{
		AppName: "ppsor", Mode: m, Threads: *threads, Procs: *procs, TCP: *tcp,
		Modules:       jgf.SORModules(m),
		CheckpointDir: *ckptDir, CheckpointEvery: *every, ShardCheckpoints: *shards,
		FailAtSafePoint: *fail, FailRank: *failRank,
		StopCheckpointAt: *stopAt,
		AdaptAtSafePoint: *adaptAt,
		AdaptTo:          core.AdaptTarget{Threads: *adaptThreads, Procs: *adaptProcs},
	}
	eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(*n, *iters, res) })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	err = eng.Run()
	rep := eng.Report()
	var stopped *core.ErrStopped
	switch {
	case err == nil:
		fmt.Printf("completed: Gtotal=%.12f safePoints=%d elapsed=%v\n",
			res.Gtotal, rep.SafePoints, rep.Elapsed)
	case errors.As(err, &stopped):
		fmt.Printf("checkpointed and stopped at safe point %d for adaptation by restart\n", stopped.SafePoint)
		return 0
	case errors.Is(err, core.ErrInjectedFailure):
		fmt.Printf("failed at safe point %d (as requested); re-run to recover from the last checkpoint\n", *fail)
		return 0
	default:
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if rep.Restarted {
		fmt.Printf("recovered from checkpoint: replay=%v load=%v\n", rep.ReplayTime, rep.LoadTotal)
	}
	if rep.Adapted {
		fmt.Println("run-time adaptation applied")
	}
	if rep.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d (%d bytes, save total %v)\n", rep.Checkpoints, rep.SaveBytes, rep.SaveTotal)
	}
	return 0
}
