// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can upload machine-readable benchmark results
// (the BENCH_*.json perf trajectory) instead of free-form text:
//
//	go test -run '^$' -bench . -benchtime 1x . | go run ./cmd/benchjson > BENCH_results.json
//
// Each benchmark line becomes one record with the run count, ns/op, and
// every custom metric reported via b.ReportMetric (bytes/ckpt,
// blocked-ns/ckpt, ...). Non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the uploaded document: environment header lines plus results.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	doc := parse(bufio.NewScanner(os.Stdin))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) *Doc {
	doc := &Doc{Results: []Result{}}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc
}

// parseBench parses one "BenchmarkName-8  N  V unit  V unit ..." line.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
