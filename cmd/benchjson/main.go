// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can upload machine-readable benchmark results
// (the BENCH_*.json perf trajectory) instead of free-form text:
//
//	go test -run '^$' -bench . -benchtime 1x . | go run ./cmd/benchjson > BENCH_results.json
//
// Each benchmark line becomes one record with the run count, ns/op, and
// every custom metric reported via b.ReportMetric (bytes/ckpt,
// blocked-ns/ckpt, ...). Non-benchmark lines are ignored. Repeated lines
// for the same benchmark (go test -count=N) merge into one record keeping
// each metric's best value — min for lower-is-better metrics, max for
// "*-ratio" — the noise-floor convention benchstat's min column uses, so
// a -count=N document gates best-of-N against best-of-N instead of one
// noisy sample.
//
// With -compare it becomes the CI regression gate instead:
//
//	benchjson -compare BENCH_baseline.json BENCH_new.json -tolerance 0.25
//
// Every metric of every benchmark present in BOTH documents is gated.
// Almost all of this repo's metrics are durations, bytes or counts
// (ns/op, B/op, allocs/op, bytes/ckpt, ...) and are treated as
// lower-is-better: a new value more than tolerance×100% above the
// baseline is a regression. Metrics named "*-ratio" (the dedup store's
// dedup-ratio) improve upward and are gated in the opposite direction: a
// new value more than tolerance×100% BELOW the baseline is the
// regression. Either way it is reported on stderr with a non-zero exit.
// Benchmarks or metrics missing from either side are skipped — new
// benchmarks enter the gate when the baseline is refreshed. B/op is
// carried in the documents but never gated: under the async pipelines it
// swings by whole pooled-buffer sizes depending on whether a background
// writer recycles a capture before the next safe point (a scheduling
// race, not a code property); allocs/op — stable, since a missed recycle
// is one allocation — and the deterministic bytes/ckpt carry that signal.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the uploaded document: environment header lines plus results.
type Doc struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	// Flags are parsed by hand so the documented invocation — positional
	// documents before the tolerance flag — works; the stock flag package
	// stops at the first positional argument.
	compareMode := false
	tolerance := 0.25
	var files []string
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case arg == "-compare" || arg == "--compare":
			compareMode = true
		case arg == "-tolerance" || arg == "--tolerance":
			i++
			if i >= len(args) {
				fatalUsage("-tolerance needs a value")
			}
			tolerance = parseTolerance(args[i])
		case strings.HasPrefix(arg, "-tolerance="):
			tolerance = parseTolerance(strings.TrimPrefix(arg, "-tolerance="))
		case strings.HasPrefix(arg, "--tolerance="):
			tolerance = parseTolerance(strings.TrimPrefix(arg, "--tolerance="))
		case strings.HasPrefix(arg, "-"):
			fatalUsage("unknown flag " + arg)
		default:
			files = append(files, arg)
		}
	}
	if compareMode {
		if len(files) != 2 {
			fatalUsage("-compare needs exactly two documents: old.json new.json")
		}
		old, err := loadDoc(files[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		cur, err := loadDoc(files[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		regressions, compared := compare(old, cur, tolerance)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		fmt.Fprintf(os.Stderr, "benchjson: compared %d metrics against %s at %.0f%% tolerance: %d regression(s)\n",
			compared, files[0], tolerance*100, len(regressions))
		if compared == 0 {
			// Nothing matched: the gate would be vacuous (renamed
			// benchmarks, or a GOMAXPROCS suffix mismatch between the
			// machines that produced the two documents). Fail loudly
			// rather than silently pass everything.
			fmt.Fprintln(os.Stderr, "benchjson: no benchmark metric matched between the documents; refusing a vacuous comparison")
			os.Exit(1)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(files) != 0 {
		fatalUsage("convert mode reads stdin and takes no arguments")
	}
	doc := parse(bufio.NewScanner(os.Stdin))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func fatalUsage(msg string) {
	fmt.Fprintln(os.Stderr, "benchjson:", msg)
	fmt.Fprintln(os.Stderr, "usage: benchjson < bench.out > BENCH_x.json")
	fmt.Fprintln(os.Stderr, "       benchjson -compare old.json new.json [-tolerance 0.25]")
	os.Exit(2)
}

func parseTolerance(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		fatalUsage("invalid tolerance " + s)
	}
	return v
}

func loadDoc(path string) (*Doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// higherBetter reports whether a metric regresses downward instead of
// upward. Ratios (today only the dedup store's dedup-ratio) are the one
// family where bigger numbers are better; everything else the repo
// reports is a duration, byte count or allocation count.
func higherBetter(metric string) bool { return strings.HasSuffix(metric, "-ratio") }

// compare gates cur against old: every metric present in both documents
// for the same benchmark name must stay within the given fractional
// tolerance of the baseline — above it for lower-is-better metrics,
// below it for "*-ratio" metrics.
func compare(old, cur *Doc, tolerance float64) (regressions []string, compared int) {
	baseline := map[string]map[string]float64{}
	for _, r := range old.Results {
		baseline[r.Name] = r.Metrics
	}
	for _, r := range cur.Results {
		base, ok := baseline[r.Name]
		if !ok {
			continue // new benchmark: enters the gate with the next baseline
		}
		for metric, v := range r.Metrics {
			if metric == "B/op" {
				continue // reported, never gated: see the package comment
			}
			want, ok := base[metric]
			if !ok {
				continue
			}
			compared++
			// A zero baseline carries no scale to regress against (e.g.
			// bg-write-ns/op of a synchronous variant); skip it.
			if want <= 0 {
				continue
			}
			if higherBetter(metric) {
				if v < want*(1-tolerance) {
					regressions = append(regressions, fmt.Sprintf(
						"%s %s: %.4g vs baseline %.4g (%.1f%%, tolerance %.0f%%, higher is better)",
						r.Name, metric, v, want, (v/want-1)*100, tolerance*100))
				}
			} else if v > want*(1+tolerance) {
				regressions = append(regressions, fmt.Sprintf(
					"%s %s: %.4g vs baseline %.4g (+%.1f%%, tolerance %.0f%%)",
					r.Name, metric, v, want, (v/want-1)*100, tolerance*100))
			}
		}
	}
	return regressions, compared
}

func parse(sc *bufio.Scanner) *Doc {
	doc := &Doc{Results: []Result{}}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				mergeResult(doc, r)
			}
		}
	}
	return doc
}

// mergeResult appends r to doc, folding repeated benchmark names
// (go test -count=N) into one record that keeps each metric's best value:
// the minimum for lower-is-better metrics, the maximum for "*-ratio".
func mergeResult(doc *Doc, r Result) {
	for i := range doc.Results {
		prev := &doc.Results[i]
		if prev.Name != r.Name {
			continue
		}
		for metric, v := range r.Metrics {
			old, seen := prev.Metrics[metric]
			better := v < old
			if higherBetter(metric) {
				better = v > old
			}
			if !seen || better {
				prev.Metrics[metric] = v
			}
		}
		return
	}
	doc.Results = append(doc.Results, r)
}

// parseBench parses one "BenchmarkName-8  N  V unit  V unit ..." line.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
