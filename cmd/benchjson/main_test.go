package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ppar
BenchmarkShardCheckpoint/sync  1  38894404 ns/op  5145887 blocked-ns/ckpt  524448 shard-bytes/ckpt
BenchmarkShardCheckpoint/async 1  18309732 ns/op  4248843 blocked-ns/ckpt  0 bg-write-ns/op
some unrelated line
`

func parseSample(t *testing.T, text string) *Doc {
	t.Helper()
	return parse(bufio.NewScanner(strings.NewReader(text)))
}

func TestParseBenchOutput(t *testing.T) {
	doc := parseSample(t, sampleBench)
	if doc.Goos != "linux" || len(doc.Results) != 2 {
		t.Fatalf("parse: %+v", doc)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkShardCheckpoint/sync" || r.Metrics["blocked-ns/ckpt"] != 5145887 {
		t.Fatalf("result: %+v", r)
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	old := parseSample(t, sampleBench)
	// Within tolerance: +20% on one metric.
	ok := parseSample(t, strings.ReplaceAll(sampleBench, "5145887 blocked-ns/ckpt", "6175064 blocked-ns/ckpt"))
	if regs, compared := compare(old, ok, 0.25); len(regs) != 0 || compared == 0 {
		t.Fatalf("within-tolerance run flagged: %v (compared %d)", regs, compared)
	}
	// Past tolerance: +50%.
	bad := parseSample(t, strings.ReplaceAll(sampleBench, "5145887 blocked-ns/ckpt", "7718830 blocked-ns/ckpt"))
	regs, _ := compare(old, bad, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "blocked-ns/ckpt") {
		t.Fatalf("regression not flagged: %v", regs)
	}
}

func TestParseMergesRepeatedRunsBestOfN(t *testing.T) {
	doc := parseSample(t, `
Benchmark/x 1  200 ns/op  4.0 dedup-ratio
Benchmark/x 1  100 ns/op  2.0 dedup-ratio
Benchmark/x 1  300 ns/op  3.0 dedup-ratio
`)
	if len(doc.Results) != 1 {
		t.Fatalf("repeated runs not merged: %+v", doc.Results)
	}
	m := doc.Results[0].Metrics
	// Best of N: min for lower-is-better, max for ratios.
	if m["ns/op"] != 100 || m["dedup-ratio"] != 4.0 {
		t.Fatalf("best-of-N merge wrong: %+v", m)
	}
}

func TestCompareGatesRatioMetricsUpward(t *testing.T) {
	const ratioBench = "BenchmarkDeltaCheckpoint/full-dedup 1  100 ns/op  8.0 dedup-ratio\n"
	old := parseSample(t, ratioBench)
	// A higher ratio (or one within tolerance below) is fine...
	ok := parseSample(t, strings.ReplaceAll(ratioBench, "8.0 dedup-ratio", "6.5 dedup-ratio"))
	if regs, compared := compare(old, ok, 0.25); len(regs) != 0 || compared != 2 {
		t.Fatalf("within-tolerance ratio flagged: %v (compared %d)", regs, compared)
	}
	// ...a collapse past tolerance is the regression, even though the
	// value went DOWN.
	bad := parseSample(t, strings.ReplaceAll(ratioBench, "8.0 dedup-ratio", "1.0 dedup-ratio"))
	regs, _ := compare(old, bad, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "dedup-ratio") {
		t.Fatalf("ratio regression not flagged: %v", regs)
	}
}

func TestCompareSkipsUnmatchedAndZeroBaselines(t *testing.T) {
	old := parseSample(t, sampleBench)
	cur := parseSample(t, sampleBench+
		"BenchmarkBrandNew 1  999 ns/op\n")
	// The async variant's zero bg-write-ns/op baseline must not flag any
	// nonzero new value, and a benchmark without a baseline is skipped.
	cur.Results[1].Metrics["bg-write-ns/op"] = 1e9
	// B/op is reported but never gated (async pool-recycle timing makes
	// heap bytes bimodal by whole buffer sizes).
	old.Results[0].Metrics["B/op"] = 1e6
	cur.Results[0].Metrics["B/op"] = 1e8
	if regs, _ := compare(old, cur, 0.25); len(regs) != 0 {
		t.Fatalf("spurious regressions: %v", regs)
	}
}
