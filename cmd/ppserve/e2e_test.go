package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"testing"
	"time"

	"ppar/internal/fleet"
	"ppar/pp"
)

func drainCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 120*time.Second)
}

// TestMain doubles as the e2e child entrypoint: when re-executed with
// PPSERVE_E2E_CHILD set, the test binary becomes the real daemon (same
// run() as the shipped command), so the parent test can kill -9 a genuine
// ppserve process and restart it over the same state directory.
func TestMain(m *testing.M) {
	if os.Getenv("PPSERVE_E2E_CHILD") == "1" {
		os.Exit(run([]string{
			"-addr", "127.0.0.1:0",
			"-dir", os.Getenv("PPSERVE_E2E_DIR"),
			"-budget", "3",
		}, os.Stdout))
	}
	os.Exit(m.Run())
}

// serverProc is one child daemon: its process, parsed listen address and
// the recovered-jobs count it reported at startup.
type serverProc struct {
	cmd       *exec.Cmd
	url       string
	recovered int
}

func startServer(t *testing.T, dir string) *serverProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "PPSERVE_E2E_CHILD=1", "PPSERVE_E2E_DIR="+dir)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if errBuf.Len() > 0 {
			t.Logf("child stderr: %s", errBuf.String())
		}
	})

	sc := bufio.NewScanner(stdout)
	lineCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			select {
			case lineCh <- sc.Text():
			default: // only the first line matters; keep draining the pipe
			}
		}
	}()
	select {
	case line := <-lineCh:
		var addr string
		var budget, recovered int
		if _, err := fmt.Sscanf(line, "ppserve: listening on %s (budget %d, %d jobs recovered)",
			&addr, &budget, &recovered); err != nil {
			t.Fatalf("unexpected startup line %q: %v", line, err)
		}
		return &serverProc{cmd: cmd, url: "http://" + addr, recovered: recovered}
	case <-time.After(30 * time.Second):
		t.Fatalf("child daemon never announced its address (stderr: %s)", errBuf.String())
		return nil
	}
}

func (p *serverProc) status(t *testing.T) fleet.Status {
	t.Helper()
	resp, err := http.Get(p.url + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st fleet.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (p *serverProc) submit(t *testing.T, spec fleet.JobSpec) int64 {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var msg map[string]string
		json.NewDecoder(resp.Body).Decode(&msg)
		t.Fatalf("submit %+v: code=%d error=%q", spec, resp.StatusCode, msg["error"])
	}
	var accepted struct {
		ID int64 `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	return accepted.ID
}

// e2eSpecs mirrors the in-process drill at daemon scale: eight jobs, three
// tenants, all four stock workloads, sequential/smp/dist shapes, sized so
// the slow ones take seconds and the kill lands mid-flight.
func e2eSpecs() []fleet.JobSpec {
	return []fleet.JobSpec{
		{Tenant: "acme", Workload: "sor", Params: map[string]int{"n": 20, "iters": 10}, CheckpointEvery: 1},
		{Tenant: "acme", Workload: "crypt", Params: map[string]int{"n": 1024}, CheckpointEvery: 1},
		{Tenant: "acme", Workload: "md", Params: map[string]int{"n": 24, "steps": 3000}, CheckpointEvery: 2},
		{Tenant: "beta", Workload: "ea", Params: map[string]int{"dim": 8, "pop": 48, "gens": 2000, "seed": 7}, CheckpointEvery: 2},
		{Tenant: "beta", Workload: "sor", Mode: pp.Shared, Threads: 2,
			Params: map[string]int{"n": 96, "iters": 1200}, CheckpointEvery: 2},
		{Tenant: "beta", Workload: "ea", Mode: pp.Shared, Threads: 2,
			Params: map[string]int{"dim": 8, "pop": 48, "gens": 1500, "seed": 9}, CheckpointEvery: 2},
		{Tenant: "gamma", Workload: "sor", Mode: pp.Distributed, Procs: 2,
			Params: map[string]int{"n": 64, "iters": 1000}, CheckpointEvery: 2},
		{Tenant: "gamma", Workload: "md", Params: map[string]int{"n": 24, "steps": 2500}, CheckpointEvery: 2},
	}
}

// The daemon-level crash drill: submit a fleet over HTTP, SIGKILL the
// daemon while jobs are running, queued and stopping, restart it over the
// same directory, and require every job to finish with digests identical
// to an uninterrupted fleet — with at least one run resuming from its
// checkpoint rather than starting over.
func TestE2EKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e kill-restart drill is not -short")
	}
	specs := e2eSpecs()

	// Uninterrupted reference digests, computed in-process (the fleet's
	// results are deterministic per spec, independent of hosting).
	control, err := fleet.New(fleet.Config{Store: pp.NewMemStore(), Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	fleet.StockWorkloads(control)
	if _, err := control.Start(); err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	want := make(map[int]string, len(specs))
	{
		var ids []int64
		for _, sp := range specs {
			id, err := control.Submit(sp)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		ctx, cancel := drainCtx()
		defer cancel()
		if err := control.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			st, _ := control.Job(id)
			if st.State != fleet.Done {
				t.Fatalf("control job %d (%s): %s (%s)", id, specs[i].Workload, st.State, st.Error)
			}
			want[i] = st.Result
		}
	}

	dir := t.TempDir()
	srv := startServer(t, dir)
	if srv.recovered != 0 {
		t.Fatalf("fresh daemon recovered %d jobs from an empty directory", srv.recovered)
	}
	ids := make([]int64, len(specs))
	for i, sp := range specs {
		ids[i] = srv.submit(t, sp)
	}

	// Wait for the mixed moment — something checkpointed and running,
	// something still queued — then stop one running job and pull the plug
	// before the stop can be acknowledged.
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := srv.status(t)
		running, queued := false, false
		for _, j := range st.Jobs {
			if j.State == fleet.Running && j.Report != nil && j.Report.Checkpoints >= 1 {
				running = true
			}
			if j.State == fleet.Queued {
				queued = true
			}
		}
		if running && queued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached a mixed checkpointed state: %+v", st.Jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, j := range srv.status(t).Jobs {
		if j.State == fleet.Running {
			req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/jobs/%d", srv.url, j.ID), nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
				break
			}
		}
	}
	if err := srv.cmd.Process.Kill(); err != nil { // SIGKILL: no checkpoint courtesy
		t.Fatal(err)
	}
	srv.cmd.Wait()

	// Restart over the same directory: the journal must re-admit every
	// unfinished job (at least the queued one plus the interrupted ones).
	srv2 := startServer(t, dir)
	if srv2.recovered == 0 {
		t.Fatal("restarted daemon recovered no jobs from the journal")
	}
	deadline = time.Now().Add(120 * time.Second)
	var final fleet.Status
	for {
		final = srv2.status(t)
		allDone := true
		for _, j := range final.Jobs {
			if j.State != fleet.Done && j.State != fleet.Failed && j.State != fleet.Stopped {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered fleet never drained: %+v", final.Jobs)
		}
		time.Sleep(20 * time.Millisecond)
	}

	byID := map[int64]fleet.JobStatus{}
	for _, j := range final.Jobs {
		byID[j.ID] = j
	}
	resumed := 0
	for i, id := range ids {
		j, ok := byID[id]
		if !ok {
			t.Fatalf("job %d vanished across the kill", id)
		}
		// The DELETE was fired microseconds before SIGKILL; if the engine
		// managed to acknowledge it, the job is legitimately Stopped.
		if j.State == fleet.Stopped {
			continue
		}
		if j.State != fleet.Done {
			t.Errorf("job %d (%s): state=%s error=%q", id, specs[i].Workload, j.State, j.Error)
			continue
		}
		if j.Result != want[i] {
			t.Errorf("job %d (%s): result %q differs from uninterrupted run %q",
				id, specs[i].Workload, j.Result, want[i])
		}
		if j.Report != nil && j.Report.Restarted {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("no job resumed from its checkpoint after the kill (all re-ran from scratch)")
	}
}
