// Command ppserve is the engine-fleet daemon: it hosts many concurrent
// checkpointed runs behind one HTTP front end, backed by the fleet
// supervisor and a filesystem checkpoint store.
//
//	ppserve -dir /var/lib/ppserve            # budget defaults to NumCPU
//	ppserve -dir ./state -addr :7070 -budget 16 -tenant-max-units 8
//
// The API is small and JSON:
//
//	POST   /jobs       submit a fleet.JobSpec; returns {"id": n}
//	GET    /jobs/{id}  one job's status (state, allocation, report)
//	DELETE /jobs/{id}  checkpoint-and-stop the job
//	GET    /status     fleet-wide budget occupancy and every job
//
// Every accepted job is journalled in the store before the submit call
// returns, and each run checkpoints into its own tenant~job namespace. A
// kill -9 of the daemon loses nothing: the next start re-admits every
// unfinished job and resumes it from its newest checkpoint. SIGINT/SIGTERM
// take the graceful path — running jobs checkpoint-and-stop, the journal
// keeps them pending, and the next start carries on.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ppar/internal/fleet"
	"ppar/pp"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("ppserve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	dir := fs.String("dir", "", "checkpoint/journal directory (required)")
	budget := fs.Int("budget", runtime.NumCPU(), "machine budget in lines of execution (threads x procs)")
	maxJobs := fs.Int("tenant-max-jobs", 0, "max concurrently running jobs per tenant (0 = unlimited)")
	maxUnits := fs.Int("tenant-max-units", 0, "max concurrently allocated budget units per tenant (0 = unlimited)")
	every := fs.Uint64("ckpt-every", 8, "default checkpoint cadence in safe points")
	fs.Parse(args)

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ppserve: -dir is required")
		return 2
	}
	store, err := pp.NewFSStore(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppserve: %v\n", err)
		return 1
	}
	sup, err := fleet.New(fleet.Config{
		Store:           store,
		Budget:          *budget,
		TenantMaxJobs:   *maxJobs,
		TenantMaxUnits:  *maxUnits,
		CheckpointEvery: *every,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ppserve: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppserve: %v\n", err)
		return 1
	}
	fleet.StockWorkloads(sup)
	recovered, err := sup.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppserve: recovering journal: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppserve: %v\n", err)
		return 1
	}
	// The e2e harness parses this line; keep its shape stable.
	fmt.Fprintf(out, "ppserve: listening on %s (budget %d, %d jobs recovered)\n",
		ln.Addr(), *budget, recovered)

	srv := newServer(sup)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(out, "ppserve: %v: checkpointing and stopping\n", s)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "ppserve: serve: %v\n", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ppserve: shutdown: %v\n", err)
	}
	if err := sup.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ppserve: close: %v\n", err)
		return 1
	}
	return 0
}
