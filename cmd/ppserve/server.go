package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"time"

	"ppar/internal/fleet"
)

// newServer builds the daemon's http.Server with the slow-client timeouts a
// long-lived service needs: without them a peer that stalls mid-headers or
// trickles a request body pins a connection (and its goroutine) forever.
// Handlers get no WriteTimeout because DELETE /jobs legitimately waits for a
// checkpoint-and-stop; idle keep-alive connections are still reaped.
func newServer(sup *fleet.Supervisor) *http.Server {
	return &http.Server{
		Handler:           newMux(sup),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// newMux wires the fleet supervisor behind the JSON API.
func newMux(sup *fleet.Supervisor) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec fleet.JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := sup.Submit(spec)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]int64{"id": id})
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		st, found := sup.Job(id)
		if !found {
			httpError(w, http.StatusNotFound, errors.New("no such job"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobID(w, r)
		if !ok {
			return
		}
		if err := sup.Stop(id); err != nil {
			code := http.StatusConflict
			if strings.Contains(err.Error(), "no job") {
				code = http.StatusNotFound
			}
			httpError(w, code, err)
			return
		}
		st, _ := sup.Job(id)
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sup.Status())
	})

	return mux
}

func jobID(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id < 1 {
		httpError(w, http.StatusBadRequest, errors.New("job ids are positive integers"))
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
