package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ppar/internal/fleet"
	"ppar/pp"
)

func newTestServer(t *testing.T) (*httptest.Server, *fleet.Supervisor) {
	t.Helper()
	sup, err := fleet.New(fleet.Config{Store: pp.NewMemStore(), Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	fleet.StockWorkloads(sup)
	if _, err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(sup))
	t.Cleanup(func() {
		srv.Close()
		sup.Close()
	})
	return srv, sup
}

func doJSON(t *testing.T, method, url, body string, into any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestServerSubmitStatusLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)

	var accepted struct {
		ID int64 `json:"id"`
	}
	code := doJSON(t, "POST", srv.URL+"/jobs",
		`{"tenant": "alice", "workload": "sor", "params": {"n": 16, "iters": 8}}`, &accepted)
	if code != http.StatusAccepted || accepted.ID == 0 {
		t.Fatalf("submit: code=%d id=%d", code, accepted.ID)
	}

	var st fleet.JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := doJSON(t, "GET", fmt.Sprintf("%s/jobs/%d", srv.URL, accepted.ID), "", &st); code != http.StatusOK {
			t.Fatalf("get job: code=%d", code)
		}
		if st.State == fleet.Done || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != fleet.Done || !strings.HasPrefix(st.Result, "gtotal=") {
		t.Fatalf("job did not complete over HTTP: %+v", st)
	}
	if st.Report == nil || st.Report.SafePoints == 0 {
		t.Fatalf("job report missing from JSON payload: %+v", st)
	}

	var fs fleet.Status
	if code := doJSON(t, "GET", srv.URL+"/status", "", &fs); code != http.StatusOK {
		t.Fatalf("status: code=%d", code)
	}
	if fs.Budget != 4 || len(fs.Jobs) != 1 || fs.Jobs[0].ID != accepted.ID {
		t.Fatalf("fleet status: %+v", fs)
	}
}

func TestServerValidationAndErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	if code := doJSON(t, "POST", srv.URL+"/jobs", `{"tenant": "a", "workload": "nope"}`, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown workload: code=%d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/jobs", `{"bad json`, nil); code != http.StatusBadRequest {
		t.Errorf("bad json: code=%d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/jobs", `{"tenant": "a", "workload": "sor", "surprise": 1}`, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: code=%d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/jobs/99", "", nil); code != http.StatusNotFound {
		t.Errorf("missing job: code=%d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/jobs/zero", "", nil); code != http.StatusBadRequest {
		t.Errorf("non-numeric id: code=%d", code)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/jobs/99", "", nil); code != http.StatusNotFound {
		t.Errorf("deleting missing job: code=%d", code)
	}
}

func TestServerStopJob(t *testing.T) {
	srv, _ := newTestServer(t)

	var accepted struct {
		ID int64 `json:"id"`
	}
	// A big sequential MD run with a tight cadence: long enough to catch
	// mid-flight, checkpointed so the stop has something to save.
	code := doJSON(t, "POST", srv.URL+"/jobs",
		`{"tenant": "bob", "workload": "md", "params": {"n": 64, "steps": 50000}, "checkpoint_every": 5}`, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}

	url := fmt.Sprintf("%s/jobs/%d", srv.URL, accepted.ID)
	var st fleet.JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		doJSON(t, "GET", url, "", &st)
		if st.State == fleet.Running || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != fleet.Running {
		t.Fatalf("job never ran: %+v", st)
	}
	if code := doJSON(t, "DELETE", url, "", &st); code != http.StatusOK {
		t.Fatalf("stop: code=%d", code)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		doJSON(t, "GET", url, "", &st)
		if st.State == fleet.Stopped || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != fleet.Stopped {
		t.Fatalf("stopped job ended as %s", st.State)
	}
	if code := doJSON(t, "DELETE", url, "", nil); code != http.StatusConflict {
		t.Errorf("re-stopping a stopped job: code=%d", code)
	}
}

func TestServerHasSlowClientTimeouts(t *testing.T) {
	sup, err := fleet.New(fleet.Config{Store: pp.NewMemStore(), Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if _, err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	srv := newServer(sup)
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: a peer stalling mid-headers pins a connection forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: a trickled request body pins a connection forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections are never reaped")
	}
	if srv.Handler == nil {
		t.Error("newServer returned a server with no handler")
	}
}
