// Command ppbench regenerates the figures of the paper's evaluation
// section. Each figure can be produced from the calibrated analytic model
// at the paper's scale (default; see internal/perfmodel) or measured on the
// real engine at a reduced scale:
//
//	ppbench              # all figures, modelled
//	ppbench -fig 5       # one figure
//	ppbench -real        # real engine runs (scaled down)
//	ppbench -real -n 600 -iters 80 -maxpe 8
//	ppbench -csv         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"ppar/internal/figures"
	"ppar/internal/metrics"
	"ppar/pp"
)

func main() { os.Exit(run()) }

func run() int {
	fs := flag.NewFlagSet("ppbench", flag.ExitOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (3..9; 0 = all)")
	real := fs.Bool("real", false, "measure the real engine instead of the model")
	n := fs.Int("n", 400, "grid size for -real")
	iters := fs.Int("iters", 60, "iterations for -real")
	maxpe := fs.Int("maxpe", 8, "largest PE count for -real")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	dir := fs.String("ckptdir", "", "checkpoint directory for -real (default: temp)")
	storeKind := fs.String("store", "fs", "checkpoint backend for -real: fs | mem | gzip")
	async := fs.Bool("async", false, "asynchronous double-buffered checkpointing for -real")
	delta := fs.Bool("delta", false, "incremental (delta) checkpointing for -real")
	fs.Parse(os.Args[1:])

	scale := figures.RealScale{N: *n, Iters: *iters, MaxPE: *maxpe, Dir: *dir, Async: *async, Delta: *delta}
	if scale.Dir == "" {
		tmp, err := os.MkdirTemp("", "ppbench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer os.RemoveAll(tmp)
		scale.Dir = tmp
	}
	switch *storeKind {
	case "fs":
		// Default: the engine builds a filesystem store in scale.Dir.
	case "mem":
		scale.Store = pp.NewMemStore()
	case "gzip":
		fsStore, err := pp.NewFSStore(scale.Dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		scale.Store = pp.NewGzipStore(fsStore)
	default:
		fmt.Fprintf(os.Stderr, "unknown -store %q (want fs, mem or gzip)\n", *storeKind)
		return 2
	}

	type gen struct {
		id    int
		model func() *metrics.Table
		real  func(figures.RealScale) (*metrics.Table, error)
	}
	gens := []gen{
		{3, figures.Fig3Model, figures.Fig3Real},
		{4, figures.Fig4Model, figures.Fig4Real},
		{5, figures.Fig5Model, figures.Fig5Real},
		{6, figures.Fig6Model, figures.Fig6Real},
		{7, figures.Fig7Model, figures.Fig7Real},
		{8, figures.Fig8Model, figures.Fig8Real},
		{9, figures.Fig9Model, figures.Fig9Real},
	}
	for _, g := range gens {
		if *fig != 0 && g.id != *fig {
			continue
		}
		var tbl *metrics.Table
		if *real {
			var err error
			tbl, err = g.real(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure %d: %v\n", g.id, err)
				return 1
			}
		} else {
			tbl = g.model()
		}
		if *csv {
			tbl.FprintCSV(os.Stdout)
		} else {
			tbl.Fprint(os.Stdout)
		}
		fmt.Println()
	}
	return 0
}
