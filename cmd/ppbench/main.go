// Command ppbench regenerates the figures of the paper's evaluation
// section. Each figure can be produced from the calibrated analytic model
// at the paper's scale (default; see internal/perfmodel) or measured on the
// real engine at a reduced scale:
//
//	ppbench              # all figures, modelled
//	ppbench -fig 5       # one figure
//	ppbench -real        # real engine runs (scaled down)
//	ppbench -real -n 600 -iters 80 -maxpe 8
//	ppbench -csv         # machine-readable output
//	ppbench -json        # JSON tables (one document per figure)
//	ppbench -adapt-mode dist   # measure a live smp->dist in-process migration
//	ppbench -skew        # skewed kernels: static smp vs the Task executor
package main

import (
	"flag"
	"fmt"
	"os"

	"ppar/internal/figures"
	"ppar/internal/jgf"
	"ppar/internal/metrics"
	"ppar/pp"
)

func main() { os.Exit(run()) }

func run() int {
	fs := flag.NewFlagSet("ppbench", flag.ExitOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (3..9; 0 = all)")
	real := fs.Bool("real", false, "measure the real engine instead of the model")
	n := fs.Int("n", 400, "grid size for -real")
	iters := fs.Int("iters", 60, "iterations for -real")
	maxpe := fs.Int("maxpe", 8, "largest PE count for -real")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := fs.Bool("json", false, "emit JSON instead of aligned tables")
	dir := fs.String("ckptdir", "", "checkpoint directory for -real (default: temp)")
	storeKind := fs.String("store", "fs", "checkpoint backend for -real: fs | mem | gzip")
	async := fs.Bool("async", false, "asynchronous double-buffered checkpointing for -real")
	delta := fs.Bool("delta", false, "incremental (delta) checkpointing for -real")
	shards := fs.Bool("shards", false, "per-rank shard checkpoints for the distributed -real runs (composes with -async/-delta)")
	adaptMode := fs.String("adapt-mode", "", "instead of figures: measure a live in-process migration of a real SOR run from an smp(4) baseline to this mode (seq|dist|hybrid); the demo uses its own fixed workload, ignoring the figure/store flags except -n/-iters/-csv")
	adaptAt := fs.Uint64("adapt-at", 0, "safe point of the -adapt-mode migration (default: half the iterations)")
	skew := fs.Bool("skew", false, "instead of figures: run the skewed kernels (hot-key crypt, power-law sparse) under the static smp schedule and the Task work-stealing executor on the real engine; -maxpe sets the worker count")
	fs.Parse(os.Args[1:])

	emit := emitter(*csv, *jsonOut)
	if *adaptMode != "" {
		return migrationDemo(*adaptMode, *adaptAt, *n, *iters, emit)
	}
	if *skew {
		return skewDemo(*maxpe, emit)
	}

	scale := figures.RealScale{N: *n, Iters: *iters, MaxPE: *maxpe, Dir: *dir, Async: *async, Delta: *delta, Shards: *shards}
	if scale.Dir == "" {
		tmp, err := os.MkdirTemp("", "ppbench-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer os.RemoveAll(tmp)
		scale.Dir = tmp
	}
	switch *storeKind {
	case "fs":
		// Default: the engine builds a filesystem store in scale.Dir.
	case "mem":
		scale.Store = pp.NewMemStore()
	case "gzip":
		fsStore, err := pp.NewFSStore(scale.Dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		scale.Store = pp.NewGzipStore(fsStore)
	default:
		fmt.Fprintf(os.Stderr, "unknown -store %q (want fs, mem or gzip)\n", *storeKind)
		return 2
	}

	type gen struct {
		id    int
		model func() *metrics.Table
		real  func(figures.RealScale) (*metrics.Table, error)
	}
	gens := []gen{
		{3, figures.Fig3Model, figures.Fig3Real},
		{4, figures.Fig4Model, figures.Fig4Real},
		{5, figures.Fig5Model, figures.Fig5Real},
		{6, figures.Fig6Model, figures.Fig6Real},
		{7, figures.Fig7Model, figures.Fig7Real},
		{8, figures.Fig8Model, figures.Fig8Real},
		{9, figures.Fig9Model, figures.Fig9Real},
	}
	for _, g := range gens {
		if *fig != 0 && g.id != *fig {
			continue
		}
		var tbl *metrics.Table
		if *real {
			var err error
			tbl, err = g.real(scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figure %d: %v\n", g.id, err)
				return 1
			}
		} else {
			tbl = g.model()
		}
		emit(tbl)
		fmt.Println()
	}
	return 0
}

// migrationDemo measures a live in-process cross-mode migration on the real
// engine: a Shared-mode SOR run migrates to the target deployment at a safe
// point mid-run, and the table compares it against the unmigrated run —
// adaptation-by-restart (Figures 6 and 7) collapsed into one process.
// emitter picks the table output format; -json wins over -csv.
func emitter(csv, jsonOut bool) func(*metrics.Table) {
	switch {
	case jsonOut:
		return func(tbl *metrics.Table) {
			if err := tbl.FprintJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	case csv:
		return func(tbl *metrics.Table) { tbl.FprintCSV(os.Stdout) }
	default:
		return func(tbl *metrics.Table) { tbl.Fprint(os.Stdout) }
	}
}

// skewDemo runs the two deliberately imbalanced kernels — hot-key IDEA crypt
// and the power-law-banded sparse matmul — under the skew-blind static smp
// schedule and under the Task executor (overdecomposition k=8, per-worker
// deques with stealing), and tabulates elapsed time, scheduler counters and
// the speedup. Wall-clock separation needs real cores: at GOMAXPROCS=1 both
// schedules serialize the same total work and the speedup hovers around
// 1.0x.
func skewDemo(pe int, emit func(*metrics.Table)) int {
	const k = 8
	run := func(name string, mode pp.Mode, modules []*pp.Module, factory pp.Factory, opts ...pp.Option) (pp.Report, error) {
		all := append([]pp.Option{
			pp.WithName(name), pp.WithMode(mode), pp.WithModules(modules...),
		}, opts...)
		eng, err := pp.New(factory, all...)
		if err != nil {
			return pp.Report{}, err
		}
		if err := eng.Run(); err != nil {
			return pp.Report{}, err
		}
		return eng.Report(), nil
	}
	kernels := []struct {
		name   string
		static []*pp.Module
		task   []*pp.Module
		leg    func(name string, mode pp.Mode, modules []*pp.Module, opts ...pp.Option) (pp.Report, float64, error)
	}{
		{
			name:   "crypt (hot first eighth)",
			static: []*pp.Module{jgf.CryptSharedModule(), jgf.CryptCheckpointModule()},
			task:   jgf.CryptModules(pp.Task),
			leg: func(name string, mode pp.Mode, modules []*pp.Module, opts ...pp.Option) (pp.Report, float64, error) {
				res := &jgf.CryptResult{}
				rep, err := run(name, mode, modules, func() pp.App {
					return jgf.NewCryptSkewed(256*1024, 16, res)
				}, opts...)
				if err == nil && !res.OK {
					err = fmt.Errorf("crypt round-trip failed validation")
				}
				return rep, float64(res.Checksum), err
			},
		},
		{
			name:   "sparse (power-law rows)",
			static: []*pp.Module{jgf.SparseSharedStaticModule(), jgf.SparseCheckpointModule()},
			task:   jgf.SparseModules(pp.Task),
			leg: func(name string, mode pp.Mode, modules []*pp.Module, opts ...pp.Option) (pp.Report, float64, error) {
				res := &jgf.SparseResult{}
				rep, err := run(name, mode, modules, func() pp.App {
					return jgf.NewSparseSkewed(2048, 4, 10, res)
				}, opts...)
				return rep, res.Ytotal, err
			},
		},
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("Skewed kernels: static smp vs Task executor (%d workers, k=%d)", pe, k),
		"kernel", "schedule", "elapsed", "chunks", "steals", "rebalances", "speedup", "identical")
	for _, kr := range kernels {
		smpRep, smpVal, err := kr.leg("ppbench-skew", pp.Shared, kr.static, pp.WithThreads(pe))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s smp: %v\n", kr.name, err)
			return 1
		}
		taskRep, taskVal, err := kr.leg("ppbench-skew", pp.Task, kr.task,
			pp.WithThreads(pe), pp.WithOverdecompose(k))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s task: %v\n", kr.name, err)
			return 1
		}
		tbl.AddRow(kr.name, "smp-static", smpRep.Elapsed, "-", "-", "-", "1.00x", "-")
		tbl.AddRow(kr.name, "task", taskRep.Elapsed,
			taskRep.TaskChunks, taskRep.Steals, taskRep.Rebalances,
			fmt.Sprintf("%.2fx", float64(smpRep.Elapsed)/float64(taskRep.Elapsed)),
			fmt.Sprintf("%v", taskVal == smpVal))
		if taskVal != smpVal {
			fmt.Fprintf(os.Stderr, "%s: the Task schedule changed the result\n", kr.name)
			return 1
		}
	}
	emit(tbl)
	return 0
}

func migrationDemo(modeName string, at uint64, n, iters int, emit func(*metrics.Table)) int {
	target, err := pp.ParseMode(modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if target == pp.Shared {
		fmt.Fprintln(os.Stderr, "the migration demo baseline is smp; pick -adapt-mode seq, dist or hybrid")
		return 2
	}
	if at == 0 {
		at = uint64(iters / 2)
	}
	run := func(opts ...pp.Option) (float64, pp.Report, error) {
		res := &jgf.SORResult{}
		// The full (hybrid) module set: a migrating run must carry the
		// advice of every mode it may land in, exactly as a cross-mode
		// restart needs the target mode's modules plugged.
		all := append([]pp.Option{
			pp.WithName("ppbench-migrate"),
			pp.WithMode(pp.Shared), pp.WithThreads(4),
			pp.WithModules(jgf.SORModules(pp.Hybrid)...),
		}, opts...)
		eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) }, all...)
		if err != nil {
			return 0, pp.Report{}, err
		}
		err = eng.Run()
		return res.Gtotal, eng.Report(), err
	}
	baseTotal, baseRep, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	migTotal, migRep, err := run(pp.WithAdaptAt(at, pp.AdaptTarget{Mode: target, Procs: 4, Threads: 4}))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if migRep.Migrations != 1 {
		fmt.Fprintf(os.Stderr, "no migration happened (target %s from a smp baseline at safe point %d of %d): %d migrations\n",
			target, at, iters, migRep.Migrations)
		return 1
	}
	tbl := metrics.NewTable(
		fmt.Sprintf("In-process migration smp->%s at safe point %d (SOR %dx%d, %d iters)", target, at, n, n, iters),
		"run", "elapsed", "migrations", "migration-blocked", "identical")
	tbl.AddRow("smp (baseline)", baseRep.Elapsed, baseRep.Migrations, baseRep.MigrationTotal, "-")
	tbl.AddRow(fmt.Sprintf("smp->%s", target), migRep.Elapsed, migRep.Migrations, migRep.MigrationTotal,
		fmt.Sprintf("%v", migTotal == baseTotal))
	emit(tbl)
	if migTotal != baseTotal {
		fmt.Fprintln(os.Stderr, "migration changed the result")
		return 1
	}
	return 0
}
