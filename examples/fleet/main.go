// Command fleet walks through the supervisor layer that cmd/ppserve wraps
// in HTTP: one process hosting many checkpointed runs for many tenants
// against a single machine budget. Three acts:
//
//  1. Multi-tenancy — two tenants' jobs share one store, each namespaced
//     under its tenant prefix, and drain concurrently under the budget.
//  2. The budget squeeze — a high-priority submission arrives while a
//     low-priority malleable job holds the whole machine; the supervisor
//     shrinks the running job at a safe point (the paper's run-time
//     adaptation, §V, driven by policy instead of an operator), admits the
//     newcomer, and grows the shrunken job back when the machine frees up.
//  3. Crash recovery — the supervisor is torn down mid-run; a new one over
//     the same store re-admits the unfinished job from the journal and
//     resumes it from its newest checkpoint.
//
// Everything runs against an in-memory store; a real deployment points
// fleet.Config.Store at pp.NewFSStore (as cmd/ppserve does) and gets the
// same journal and checkpoints kill -9-proof on disk.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ppar/internal/fleet"
	"ppar/pp"
)

func main() {
	store := pp.NewMemStore()
	sup := start(store)

	// --- Act 1: two tenants, four workloads, one budget -----------------
	fmt.Println("act 1: two tenants share the machine")
	var ids []int64
	for _, spec := range []fleet.JobSpec{
		{Tenant: "acme", Workload: "sor", Params: map[string]int{"n": 64, "iters": 60}},
		{Tenant: "acme", Workload: "crypt", Params: map[string]int{"n": 2048}},
		{Tenant: "beta", Workload: "md", Params: map[string]int{"n": 24, "steps": 40}},
		{Tenant: "beta", Workload: "ea", Params: map[string]int{"dim": 6, "pop": 32, "gens": 30, "seed": 7}},
	} {
		id, err := sup.Submit(spec)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := sup.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	for _, id := range ids {
		st, _ := sup.Job(id)
		fmt.Printf("  job %d  %-6s %-5s  %s  %s\n", st.ID, st.Tenant, st.Workload, st.State, st.Result)
	}

	// --- Act 2: the budget squeeze --------------------------------------
	// A malleable low-priority job (smp, 4 threads, may shrink to 1) takes
	// the whole machine; a rigid high-priority job then needs 3 units.
	fmt.Println("act 2: a high-priority job squeezes a malleable one")
	low, err := sup.Submit(fleet.JobSpec{
		Tenant: "acme", Workload: "sor", Mode: pp.Shared,
		Threads: 4, MinThreads: 1, Priority: 1,
		Params: map[string]int{"n": 256, "iters": 400}, CheckpointEvery: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	waitFor(sup, low, func(st fleet.JobStatus) bool { return st.State == fleet.Running && st.Alloc == 4 })
	fmt.Printf("  low-priority job %d running with the full budget (alloc 4)\n", low)

	high, err := sup.Submit(fleet.JobSpec{
		Tenant: "beta", Workload: "md", Mode: pp.Shared, Threads: 3, Priority: 9,
		Params: map[string]int{"n": 24, "steps": 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	waitFor(sup, high, func(st fleet.JobStatus) bool { return st.State == fleet.Running })
	lo, _ := sup.Job(low)
	fmt.Printf("  high-priority job %d admitted; low job shrunk to alloc %d at a safe point\n", high, lo.Alloc)

	if st, err := sup.WaitJob(ctx, high); err != nil || st.State != fleet.Done {
		log.Fatalf("high job: %+v %v", st, err)
	}
	waitFor(sup, low, func(st fleet.JobStatus) bool { return st.Alloc == 4 || st.State == fleet.Done })
	lo, _ = sup.Job(low)
	fmt.Printf("  high job done; low job grew back (alloc %d, adapted=%v)\n",
		lo.Alloc, lo.Report != nil && lo.Report.Adapted)
	if st, err := sup.WaitJob(ctx, low); err != nil || st.State != fleet.Done {
		log.Fatalf("low job: %+v %v", st, err)
	} else {
		fmt.Printf("  low job finished correctly after shrink+grow: %s\n", st.Result)
	}

	// --- Act 3: crash recovery from the journal -------------------------
	fmt.Println("act 3: shut down mid-run, resume from the journal")
	slow, err := sup.Submit(fleet.JobSpec{
		Tenant: "acme", Workload: "sor",
		Params: map[string]int{"n": 256, "iters": 2000}, CheckpointEvery: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	waitFor(sup, slow, func(st fleet.JobStatus) bool {
		return st.Report != nil && st.Report.Checkpoints >= 1
	})
	if err := sup.Close(); err != nil { // parks the running job, journal keeps it pending
		log.Fatal(err)
	}
	fmt.Printf("  supervisor closed with job %d checkpointed but unfinished\n", slow)

	sup2 := start(store) // same store: the journal re-admits the job
	defer sup2.Close()
	st, err := sup2.WaitJob(ctx, slow)
	if err != nil || st.State != fleet.Done {
		log.Fatalf("resumed job: %+v %v", st, err)
	}
	fmt.Printf("  new supervisor resumed it from the checkpoint (restarted=%v): %s\n",
		st.Report.Restarted, st.Result)
}

func start(store pp.Store) *fleet.Supervisor {
	sup, err := fleet.New(fleet.Config{Store: store, Budget: 4})
	if err != nil {
		log.Fatal(err)
	}
	fleet.StockWorkloads(sup)
	recovered, err := sup.Start()
	if err != nil {
		log.Fatal(err)
	}
	if recovered > 0 {
		fmt.Printf("  (%d unfinished job(s) recovered from the journal)\n", recovered)
	}
	return sup
}

func waitFor(sup *fleet.Supervisor, id int64, cond func(fleet.JobStatus) bool) {
	deadline := time.Now().Add(time.Minute)
	for {
		st, ok := sup.Job(id)
		if ok && cond(st) {
			return
		}
		if st.State == fleet.Failed || time.Now().After(deadline) {
			log.Fatalf("job %d never reached the expected state: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
