// Command evolutionary runs the pluggable evolutionary-computation
// framework (the paper's case study [20]): one genetic algorithm deployed
// sequentially, on a thread team and across replicas, with a mid-run world
// expansion — the scenario of a Grid granting extra nodes while an
// optimisation runs.
package main

import (
	"fmt"
	"log"

	"ppar/internal/ea"
	"ppar/pp"
)

func main() {
	problem := ea.Rastrigin{D: 8}
	const pop, gens, seed = 64, 40, 7

	run := func(label string, mode pp.Mode, opts ...pp.Option) float64 {
		res := &ea.Result{}
		opts = append([]pp.Option{
			pp.WithName("ea-demo"),
			pp.WithMode(mode),
			pp.WithModules(ea.Modules(mode)...),
		}, opts...)
		eng, err := pp.New(func() pp.App { return ea.New(problem, pop, gens, seed, res) }, opts...)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-40s best fitness = %.6f  (%v)\n", label, res.Best, eng.Report().Elapsed)
		return res.Best
	}

	ref := run("sequential", pp.Sequential)
	variants := []struct {
		label string
		mode  pp.Mode
		opts  []pp.Option
	}{
		{"4 threads", pp.Shared, []pp.Option{pp.WithThreads(4)}},
		{"4 replicas", pp.Distributed, []pp.Option{pp.WithProcs(4)}},
		{"2 replicas -> 4 mid-run", pp.Distributed, []pp.Option{pp.WithProcs(2),
			pp.WithAdaptAt(20, pp.AdaptTarget{Procs: 4})}},
	}
	for _, v := range variants {
		if got := run(v.label, v.mode, v.opts...); got != ref {
			log.Fatalf("%s: best %v differs from sequential %v", v.label, got, ref)
		}
	}
	fmt.Println("evolution is deterministic across deployments and adaptations")
}
