// Command evolutionary runs the pluggable evolutionary-computation
// framework (the paper's case study [20]): one genetic algorithm deployed
// sequentially, on a thread team and across replicas, with a mid-run world
// expansion — the scenario of a Grid granting extra nodes while an
// optimisation runs.
package main

import (
	"fmt"
	"log"

	"ppar/internal/core"
	"ppar/internal/ea"
)

func main() {
	problem := ea.Rastrigin{D: 8}
	const pop, gens, seed = 64, 40, 7

	run := func(label string, cfg core.Config) float64 {
		res := &ea.Result{}
		cfg.AppName = "ea-demo"
		cfg.Modules = ea.Modules(cfg.Mode)
		eng, err := core.New(cfg, func() core.App { return ea.New(problem, pop, gens, seed, res) })
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-40s best fitness = %.6f  (%v)\n", label, res.Best, eng.Report().Elapsed)
		return res.Best
	}

	ref := run("sequential", core.Config{Mode: core.Sequential})
	variants := []struct {
		label string
		cfg   core.Config
	}{
		{"4 threads", core.Config{Mode: core.Shared, Threads: 4}},
		{"4 replicas", core.Config{Mode: core.Distributed, Procs: 4}},
		{"2 replicas -> 4 mid-run", core.Config{Mode: core.Distributed, Procs: 2,
			AdaptAtSafePoint: 20, AdaptTo: core.AdaptTarget{Procs: 4}}},
	}
	for _, v := range variants {
		if got := run(v.label, v.cfg); got != ref {
			log.Fatalf("%s: best %v differs from sequential %v", v.label, got, ref)
		}
	}
	fmt.Println("evolution is deterministic across deployments and adaptations")
}
