// Command autoscale demonstrates the closed-loop elastic controller: the
// run-time adaptation machinery of §IV.B driven not by a scripted policy
// but by a live performance model fitted from the run's own signals.
//
// Two scenarios play out, both verified against the sequential reference:
//
//   - growth: a SOR run starts on one thread under a four-core capacity;
//     the autoscaler measures the per-safe-point rate, fits the speedup
//     curve against the analytic prior, and grows the team while the
//     predicted saving clears the measured migration cost.
//   - capacity churn: the cluster simulator plays a node-loss/arrival
//     schedule into the controller's capacity feed; losses force immediate
//     shrinks (never gated on profit — the cores are gone), arrivals are
//     regrown into only when the fitted curve says they pay.
package main

import (
	"fmt"
	"log"
	"time"

	"ppar/internal/cluster"
	"ppar/internal/jgf"
	"ppar/pp"
)

const (
	gridN = 192
	iters = 6000
)

func runScenario(label string, threads int, as *pp.AutoScale) {
	res := &jgf.SORResult{}
	eng, err := pp.New(func() pp.App { return jgf.NewSOR(gridN, iters, res) },
		pp.WithName("example-autoscale"),
		pp.WithMode(pp.Shared),
		pp.WithThreads(threads),
		pp.WithModules(jgf.SORModules(pp.Shared)...),
		pp.WithAutoScale(as),
	)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	ok := res.Gtotal == jgf.SORReference(gridN, iters)
	rep := eng.Report()
	fmt.Printf("%s: %.2fs, adapted=%v, result ok=%v\n", label, elapsed.Seconds(), rep.Adapted, ok)
	for _, d := range as.Decisions() {
		kind := "voluntary"
		if d.Forced {
			kind = "forced"
		}
		fmt.Printf("  sp %-6d %-9s -> threads=%d procs=%d mode=%v (%s)\n",
			d.SP, kind, d.Target.Threads, d.Target.Procs, d.Target.Mode, d.Reason)
	}
	if !ok {
		log.Fatalf("%s diverged from the sequential reference", label)
	}
}

func main() {
	fmt.Println("== growth under static capacity ==")
	runScenario("grow-to-capacity", 1, pp.NewAutoScale(pp.AutoScaleConfig{
		Interval:   2 * time.Millisecond,
		MinWindows: 2,
		MoveCost:   time.Millisecond,
		HorizonSP:  20000,
		Cooldown:   50 * time.Millisecond,
		Capacity:   func() (int, int) { return 4, 1 },
	}))

	fmt.Println("\n== capacity churn (node loss and arrival) ==")
	top := cluster.Topology{Machines: 1, Cores: 4}
	churn := cluster.NewChurnSim(top, cluster.LossArrival(top, 80*time.Millisecond, 6)...)
	stop := churn.Start()
	defer stop()
	runScenario("churn", 4, pp.NewAutoScale(pp.AutoScaleConfig{
		Interval:   2 * time.Millisecond,
		MinWindows: 2,
		MoveCost:   time.Millisecond,
		HorizonSP:  20000,
		Cooldown:   50 * time.Millisecond,
		Capacity:   churn.Capacity,
	}))
}
