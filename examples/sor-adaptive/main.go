// Command sor-adaptive demonstrates §IV.B of the paper: run-time
// adaptation of the parallelism structure. A SOR run starts on a small
// team/world and, at a safe point mid-run, expands to use newly available
// resources — without restarting and without changing the result. Both
// directions are shown (expansion and contraction), for threads and for
// replicas, driven by pluggable adaptation policies.
//
// With -mode=task the demo instead exercises the work-stealing Task
// executor end to end (overdecomposition, stealing, the cross-rank
// balancer, in-place thread adaptation) and verifies the result never
// moves — the CI smoke that catches scheduler regressions outside unit
// tests.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ppar/internal/jgf"
	"ppar/pp"
)

func main() {
	modeFlag := flag.String("mode", "", `"" runs the adaptation scenarios; "task" runs the work-stealing executor smoke`)
	flag.Parse()
	if *modeFlag == "task" {
		taskSmoke()
		return
	}
	if *modeFlag != "" {
		log.Fatalf("unknown -mode %q (want empty or task)", *modeFlag)
	}

	const n, iters = 200, 40
	reference := jgf.SORReference(n, iters)
	fmt.Printf("reference Gtotal: %.12f\n\n", reference)

	scenarios := []struct {
		label string
		mode  pp.Mode
		opts  []pp.Option
	}{
		{
			"threads 2 -> 8 at safe point 20 (expansion)",
			pp.Shared,
			[]pp.Option{pp.WithThreads(2),
				pp.WithAdaptPolicy(pp.AdaptAt(20, pp.AdaptTarget{Threads: 8}))},
		},
		{
			"threads 8 -> 2 at safe point 20 (contraction)",
			pp.Shared,
			[]pp.Option{pp.WithThreads(8),
				pp.WithAdaptPolicy(pp.AdaptAt(20, pp.AdaptTarget{Threads: 2}))},
		},
		{
			"replicas 2 -> 6 at safe point 20 (expansion)",
			pp.Distributed,
			[]pp.Option{pp.WithProcs(2),
				pp.WithAdaptPolicy(pp.AdaptAt(20, pp.AdaptTarget{Procs: 6}))},
		},
		{
			"replicas 6 -> 2 at safe point 20 (contraction)",
			pp.Distributed,
			[]pp.Option{pp.WithProcs(6),
				pp.WithAdaptPolicy(pp.AdaptAt(20, pp.AdaptTarget{Procs: 2}))},
		},
		{
			"threads 2 -> 6 -> 4 (Schedule policy)",
			pp.Shared,
			[]pp.Option{pp.WithThreads(2),
				pp.WithAdaptPolicy(pp.Schedule(
					pp.AdaptStep{At: 10, Target: pp.AdaptTarget{Threads: 6}},
					pp.AdaptStep{At: 30, Target: pp.AdaptTarget{Threads: 4}},
				))},
		},
	}
	for _, sc := range scenarios {
		res := &jgf.SORResult{}
		opts := append([]pp.Option{
			pp.WithName("sor-adaptive"),
			pp.WithMode(sc.mode),
			pp.WithModules(jgf.SORModules(sc.mode)...),
		}, sc.opts...)
		eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) }, opts...)
		if err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		rep := eng.Report()
		status := "identical result"
		if res.Gtotal != reference {
			status = "RESULT DIVERGED"
		}
		fmt.Printf("%-48s adapted=%v  %s\n", sc.label, rep.Adapted, status)
		if res.Gtotal != reference {
			log.Fatal("adaptation changed the computation")
		}
	}

	// The asynchronous path: a simulated resource manager grants more
	// threads while the program runs; the coordinator applies the change at
	// the next safe point it reaches.
	res := &jgf.SORResult{}
	manager := pp.NewAdaptManager(pp.Grant(0*time.Millisecond, pp.AdaptTarget{Threads: 6}))
	eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) },
		pp.WithName("sor-adaptive"),
		pp.WithMode(pp.Shared), pp.WithThreads(2),
		pp.WithModules(jgf.SORModules(pp.Shared)...),
		pp.WithAdaptManager(manager))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-48s adapted=%v  identical result\n",
		"AdaptManager: threads 2 -> 6 (asynchronous)", eng.Report().Adapted)
	if res.Gtotal != reference {
		log.Fatal("asynchronous adaptation changed the computation")
	}
	fmt.Println("\nall adaptations preserved the computation")
}

// taskSmoke drives the Task executor through the shapes unit tests cover in
// isolation, composed end to end: multiple overdecomposition factors, a
// multi-rank world with the cross-rank balancer armed, and an in-place
// thread adaptation mid-run. Any divergence from the sequential reference
// is fatal.
func taskSmoke() {
	const n, iters = 200, 40
	reference := jgf.SORReference(n, iters)
	fmt.Printf("reference Gtotal: %.12f\n\n", reference)

	scenarios := []struct {
		label string
		opts  []pp.Option
	}{
		{"task 4 workers, k=8", []pp.Option{
			pp.WithThreads(4), pp.WithOverdecompose(8)}},
		{"task 4 workers, k=1 (degenerate static)", []pp.Option{
			pp.WithThreads(4), pp.WithOverdecompose(1)}},
		{"task 2x2 world, k=8 (cross-rank balancer armed)", []pp.Option{
			pp.WithProcs(2), pp.WithThreads(2), pp.WithOverdecompose(8)}},
		{"task threads 2 -> 4 at safe point 20", []pp.Option{
			pp.WithThreads(2), pp.WithOverdecompose(8),
			pp.WithAdaptPolicy(pp.AdaptAt(20, pp.AdaptTarget{Threads: 4}))}},
	}
	for _, sc := range scenarios {
		res := &jgf.SORResult{}
		opts := append([]pp.Option{
			pp.WithName("sor-adaptive"),
			pp.WithMode(pp.Task),
			pp.WithModules(jgf.SORModules(pp.Task)...),
		}, sc.opts...)
		eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) }, opts...)
		if err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		rep := eng.Report()
		fmt.Printf("%-48s chunks=%-5d steals=%-5d rebalances=%d  identical=%v\n",
			sc.label, rep.TaskChunks, rep.Steals, rep.Rebalances, res.Gtotal == reference)
		if res.Gtotal != reference {
			log.Fatalf("%s: the Task schedule changed the computation", sc.label)
		}
	}
	fmt.Println("\nwork stealing preserved the computation")
}
