// Command sor-adaptive demonstrates §IV.B of the paper: run-time
// adaptation of the parallelism structure. A SOR run starts on a small
// team/world and, at a safe point mid-run, expands to use newly available
// resources — without restarting and without changing the result. Both
// directions are shown (expansion and contraction), for threads and for
// replicas.
package main

import (
	"fmt"
	"log"

	"ppar/internal/core"
	"ppar/internal/jgf"
)

func main() {
	const n, iters = 200, 40
	reference := jgf.SORReference(n, iters)
	fmt.Printf("reference Gtotal: %.12f\n\n", reference)

	scenarios := []struct {
		label string
		cfg   core.Config
	}{
		{
			"threads 2 -> 8 at safe point 20 (expansion)",
			core.Config{Mode: core.Shared, Threads: 2,
				AdaptAtSafePoint: 20, AdaptTo: core.AdaptTarget{Threads: 8}},
		},
		{
			"threads 8 -> 2 at safe point 20 (contraction)",
			core.Config{Mode: core.Shared, Threads: 8,
				AdaptAtSafePoint: 20, AdaptTo: core.AdaptTarget{Threads: 2}},
		},
		{
			"replicas 2 -> 6 at safe point 20 (expansion)",
			core.Config{Mode: core.Distributed, Procs: 2,
				AdaptAtSafePoint: 20, AdaptTo: core.AdaptTarget{Procs: 6}},
		},
		{
			"replicas 6 -> 2 at safe point 20 (contraction)",
			core.Config{Mode: core.Distributed, Procs: 6,
				AdaptAtSafePoint: 20, AdaptTo: core.AdaptTarget{Procs: 2}},
		},
	}
	for _, sc := range scenarios {
		res := &jgf.SORResult{}
		cfg := sc.cfg
		cfg.AppName = "sor-adaptive"
		cfg.Modules = jgf.SORModules(cfg.Mode)
		eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(n, iters, res) })
		if err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		rep := eng.Report()
		status := "identical result"
		if res.Gtotal != reference {
			status = "RESULT DIVERGED"
		}
		fmt.Printf("%-48s adapted=%v  %s\n", sc.label, rep.Adapted, status)
		if res.Gtotal != reference {
			log.Fatal("adaptation changed the computation")
		}
	}

	// The RequestAdapt path: a "resource manager" grants more threads
	// while the program runs; the coordinator applies the change at the
	// next safe point it reaches.
	res := &jgf.SORResult{}
	cfg := core.Config{
		Mode: core.Shared, Threads: 2, AppName: "sor-adaptive",
		Modules: jgf.SORModules(core.Shared),
	}
	eng, err := core.New(cfg, func() core.App { return jgf.NewSOR(n, iters, res) })
	if err != nil {
		log.Fatal(err)
	}
	eng.RequestAdapt(core.AdaptTarget{Threads: 6}) // resources became available
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-48s adapted=%v  identical result\n",
		"RequestAdapt: threads 2 -> 6 (asynchronous)", eng.Report().Adapted)
	if res.Gtotal != reference {
		log.Fatal("asynchronous adaptation changed the computation")
	}
	fmt.Println("\nall adaptations preserved the computation")
}
