// Command moldyn runs the pluggable molecular-dynamics framework (the
// paper's case study [21]): a Lennard-Jones simulation deployed across
// modes with checkpointing, surviving an injected failure without changing
// the trajectory.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"ppar/internal/core"
	"ppar/internal/md"
)

func main() {
	const atoms, steps = 64, 20
	pot := md.LennardJones{}

	run := func(label string, cfg core.Config, res *md.Observables, factory core.Factory) *core.Engine {
		cfg.AppName = "md-demo"
		if cfg.Modules == nil {
			cfg.Modules = md.Modules(cfg.Mode)
		}
		eng, err := core.New(cfg, factory)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-36s E_kin=%.9f E_pot=%.9f\n", label, res.Kinetic, res.Potential)
		return eng
	}

	seq := &md.Observables{}
	run("sequential", core.Config{Mode: core.Sequential}, seq,
		func() core.App { return md.New(pot, atoms, steps, seq) })

	smp := &md.Observables{}
	run("4 threads", core.Config{Mode: core.Shared, Threads: 4}, smp,
		func() core.App { return md.New(pot, atoms, steps, smp) })

	dist := &md.Observables{}
	run("4 replicas", core.Config{Mode: core.Distributed, Procs: 4}, dist,
		func() core.App { return md.New(pot, atoms, steps, dist) })

	if *smp != *seq || *dist != *seq {
		log.Fatal("deployments disagree on the trajectory")
	}

	// Failure + recovery: the trajectory must continue bit-identically.
	dir, err := os.MkdirTemp("", "ppar-md-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	rec := &md.Observables{}
	factory := func() core.App { return md.New(pot, atoms, steps, rec) }
	cfg := core.Config{
		Mode: core.Distributed, Procs: 4, AppName: "md-demo",
		Modules:       md.Modules(core.Distributed),
		CheckpointDir: dir, CheckpointEvery: 5, FailAtSafePoint: 13, FailRank: 1,
	}
	eng, err := core.New(cfg, factory)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, core.ErrInjectedFailure) {
		log.Fatalf("expected the injected failure, got %v", err)
	}
	fmt.Println("replica 1 died at step 13; restarting from the step-10 snapshot")
	cfg.FailAtSafePoint = 0
	eng2, err := core.New(cfg, factory)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-36s E_kin=%.9f E_pot=%.9f\n", "recovered run", rec.Kinetic, rec.Potential)
	if *rec != *seq {
		log.Fatal("recovered trajectory differs")
	}
	fmt.Println("trajectory identical across deployments and across the failure")
}
