// Command moldyn runs the pluggable molecular-dynamics framework (the
// paper's case study [21]): a Lennard-Jones simulation deployed across
// modes with checkpointing, surviving an injected failure without changing
// the trajectory. Checkpoints go through the in-memory store — no
// filesystem involved.
package main

import (
	"errors"
	"fmt"
	"log"

	"ppar/internal/md"
	"ppar/pp"
)

func main() {
	const atoms, steps = 64, 20
	pot := md.LennardJones{}

	run := func(label string, res *md.Observables, factory pp.Factory, mode pp.Mode, opts ...pp.Option) *pp.Engine {
		opts = append([]pp.Option{
			pp.WithName("md-demo"),
			pp.WithMode(mode),
			pp.WithModules(md.Modules(mode)...),
		}, opts...)
		eng, err := pp.New(factory, opts...)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-36s E_kin=%.9f E_pot=%.9f\n", label, res.Kinetic, res.Potential)
		return eng
	}

	seq := &md.Observables{}
	run("sequential", seq, func() pp.App { return md.New(pot, atoms, steps, seq) }, pp.Sequential)

	smp := &md.Observables{}
	run("4 threads", smp, func() pp.App { return md.New(pot, atoms, steps, smp) },
		pp.Shared, pp.WithThreads(4))

	dist := &md.Observables{}
	run("4 replicas", dist, func() pp.App { return md.New(pot, atoms, steps, dist) },
		pp.Distributed, pp.WithProcs(4))

	if *smp != *seq || *dist != *seq {
		log.Fatal("deployments disagree on the trajectory")
	}

	// Failure + recovery: the trajectory must continue bit-identically,
	// through a pluggable non-filesystem checkpoint backend.
	store := pp.NewMemStore()
	rec := &md.Observables{}
	factory := func() pp.App { return md.New(pot, atoms, steps, rec) }
	eng, err := pp.New(factory,
		pp.WithName("md-demo"),
		pp.WithMode(pp.Distributed), pp.WithProcs(4),
		pp.WithModules(md.Modules(pp.Distributed)...),
		pp.WithStore(store), pp.WithCheckpointEvery(5),
		pp.WithFailureAt(13, 1))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		log.Fatalf("expected the injected failure, got %v", err)
	}
	fmt.Println("replica 1 died at step 13; restarting from the step-10 snapshot")
	eng2, err := pp.New(factory,
		pp.WithName("md-demo"),
		pp.WithMode(pp.Distributed), pp.WithProcs(4),
		pp.WithModules(md.Modules(pp.Distributed)...),
		pp.WithStore(store), pp.WithCheckpointEvery(5))
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-36s E_kin=%.9f E_pot=%.9f\n", "recovered run", rec.Kinetic, rec.Potential)
	if *rec != *seq {
		log.Fatal("recovered trajectory differs")
	}
	fmt.Println("trajectory identical across deployments and across the failure")
}
