// Command checkpoint-restart demonstrates §IV.A of the paper: pluggable
// application-level checkpointing with failure recovery. A distributed SOR
// run is killed by an injected failure; the relaunch detects the crash via
// the run ledger (the pcr module), replays the program skipping ignorable
// methods, loads the snapshot, and finishes with exactly the result an
// uninterrupted run produces — then the same snapshot restarts the program
// in a DIFFERENT execution mode (shared memory), showing the cross-mode
// portability of the gather-at-master checkpoint. Both demos checkpoint
// through a pluggable backend: a gzip-compressed in-memory store, never
// touching the filesystem.
package main

import (
	"errors"
	"fmt"
	"log"

	"ppar/internal/jgf"
	"ppar/pp"
)

func main() {
	const n, iters = 200, 40

	reference := jgf.SORReference(n, iters)
	fmt.Printf("reference Gtotal (uninterrupted):      %.12f\n", reference)

	// The pluggable backend shared by the runs that must see each other's
	// checkpoints: gzip compression over the in-memory store.
	store := pp.NewGzipStore(pp.NewMemStore())

	res := &jgf.SORResult{}
	factory := func() pp.App { return jgf.NewSOR(n, iters, res) }
	common := func(mode pp.Mode, extra ...pp.Option) []pp.Option {
		return append([]pp.Option{
			pp.WithName("ckpt-demo"),
			pp.WithMode(mode),
			pp.WithModules(jgf.SORModules(mode)...),
			pp.WithStore(store),
			pp.WithCheckpointEvery(10),
		}, extra...)
	}

	// Run 1: distributed on 4 replicas, checkpoint every 10 safe points,
	// injected failure at safe point 25 (after the second checkpoint).
	eng, err := pp.New(factory, common(pp.Distributed, pp.WithProcs(4),
		pp.WithFailureAt(25, 2))...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		log.Fatalf("expected the injected failure, got: %v", err)
	}
	fmt.Printf("run 1: rank 2 died at safe point 25 (checkpoints taken: %d)\n",
		eng.Report().Checkpoints)

	// Run 2: same deployment; the pcr module detects the failed run and
	// replays to the snapshot taken at safe point 20.
	eng2, err := pp.New(factory, common(pp.Distributed, pp.WithProcs(4))...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		log.Fatal(err)
	}
	rep := eng2.Report()
	fmt.Printf("run 2: restarted=%v replay=%v load=%v Gtotal=%.12f\n",
		rep.Restarted, rep.ReplayTime, rep.LoadTotal, res.Gtotal)
	if res.Gtotal != reference {
		log.Fatal("restarted result differs from the uninterrupted reference")
	}

	// Run 3: cross-mode restart. Kill a fresh distributed run, then
	// restart it as a SHARED-MEMORY run from the same canonical snapshot.
	store = pp.NewGzipStore(pp.NewMemStore()) // fresh backend, fresh history
	eng3, err := pp.New(factory, common(pp.Distributed, pp.WithProcs(4),
		pp.WithFailureAt(25, 2))...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng3.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		log.Fatalf("expected the injected failure, got: %v", err)
	}
	eng4, err := pp.New(factory, common(pp.Shared, pp.WithThreads(4))...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng4.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 3: died as 4 replicas, restarted as 4 threads: Gtotal=%.12f\n", res.Gtotal)
	if res.Gtotal != reference {
		log.Fatal("cross-mode restart result differs from the reference")
	}

	// Run 4: asynchronous double-buffered checkpointing. The safe point
	// only captures an in-memory copy of the grid; encoding and the store
	// write overlap computation in a background writer, which is drained
	// at exit — so the injected failure still leaves a complete snapshot
	// to restart from.
	store = pp.NewGzipStore(pp.NewMemStore())
	eng5, err := pp.New(factory, common(pp.Shared, pp.WithThreads(4),
		pp.WithAsyncCheckpoint(), pp.WithFailureAt(25, 0))...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng5.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
		log.Fatalf("expected the injected failure, got: %v", err)
	}
	rep5 := eng5.Report()
	fmt.Printf("run 4: async checkpoints: blocked %v capturing, %v writing in the background\n",
		rep5.CaptureTotal, rep5.AsyncSaveTotal)
	eng6, err := pp.New(factory, common(pp.Shared, pp.WithThreads(4),
		pp.WithAsyncCheckpoint())...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng6.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 4: restarted after async checkpointing: Gtotal=%.12f\n", res.Gtotal)
	if res.Gtotal != reference {
		log.Fatal("async-checkpoint restart result differs from the reference")
	}
	fmt.Println("checkpoint/restart preserved the result in and across modes")
}
