// Command checkpoint-restart demonstrates §IV.A of the paper: pluggable
// application-level checkpointing with failure recovery. A distributed SOR
// run is killed by an injected failure; the relaunch detects the crash via
// the run ledger (the pcr module), replays the program skipping ignorable
// methods, loads the snapshot, and finishes with exactly the result an
// uninterrupted run produces — then the same snapshot restarts the program
// in a DIFFERENT execution mode (shared memory), showing the cross-mode
// portability of the gather-at-master checkpoint.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"ppar/internal/core"
	"ppar/internal/jgf"
)

func main() {
	const n, iters = 200, 40
	dir, err := os.MkdirTemp("", "ppar-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	reference := jgf.SORReference(n, iters)
	fmt.Printf("reference Gtotal (uninterrupted):      %.12f\n", reference)

	// Run 1: distributed on 4 replicas, checkpoint every 10 safe points,
	// injected failure at safe point 25 (after the second checkpoint).
	res := &jgf.SORResult{}
	factory := func() core.App { return jgf.NewSOR(n, iters, res) }
	cfg := core.Config{
		Mode: core.Distributed, Procs: 4, AppName: "ckpt-demo",
		Modules:       jgf.SORModules(core.Distributed),
		CheckpointDir: dir, CheckpointEvery: 10,
		FailAtSafePoint: 25, FailRank: 2,
	}
	eng, err := core.New(cfg, factory)
	if err != nil {
		log.Fatal(err)
	}
	err = eng.Run()
	if !errors.Is(err, core.ErrInjectedFailure) {
		log.Fatalf("expected the injected failure, got: %v", err)
	}
	fmt.Printf("run 1: rank 2 died at safe point 25 (checkpoints taken: %d)\n",
		eng.Report().Checkpoints)

	// Run 2: same deployment; the pcr module detects the failed run and
	// replays to the snapshot taken at safe point 20.
	cfg.FailAtSafePoint = 0
	eng2, err := core.New(cfg, factory)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		log.Fatal(err)
	}
	rep := eng2.Report()
	fmt.Printf("run 2: restarted=%v replay=%v load=%v Gtotal=%.12f\n",
		rep.Restarted, rep.ReplayTime, rep.LoadTotal, res.Gtotal)
	if res.Gtotal != reference {
		log.Fatal("restarted result differs from the uninterrupted reference")
	}

	// Run 3: cross-mode restart. Kill a fresh distributed run, then
	// restart it as a SHARED-MEMORY run from the same canonical snapshot.
	if err := os.RemoveAll(dir); err != nil {
		log.Fatal(err)
	}
	cfg.FailAtSafePoint = 25
	eng3, err := core.New(cfg, factory)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng3.Run(); !errors.Is(err, core.ErrInjectedFailure) {
		log.Fatalf("expected the injected failure, got: %v", err)
	}
	smp := core.Config{
		Mode: core.Shared, Threads: 4, AppName: "ckpt-demo",
		Modules:       jgf.SORModules(core.Shared),
		CheckpointDir: dir, CheckpointEvery: 10,
	}
	eng4, err := core.New(smp, factory)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng4.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 3: died as 4 replicas, restarted as 4 threads: Gtotal=%.12f\n", res.Gtotal)
	if res.Gtotal != reference {
		log.Fatal("cross-mode restart result differs from the reference")
	}
	fmt.Println("checkpoint/restart preserved the result in and across modes")
}
