// Command shard-reshard demonstrates first-class sharded checkpointing: a
// distributed SOR run where every rank persists its own shard chain in
// parallel — asynchronously and incrementally (only changed chunks),
// committed by a manifest written after the last shard of each wave lands —
// is killed mid-chain, then restarted into a LARGER world: the restore
// repartitions the committed shards through their recorded layouts, so the
// resized run finishes with exactly the result an uninterrupted run
// produces. A final leg restarts the same shards as a shared-memory run
// (shard → smp), the re-sharding analogue of the paper's cross-mode
// restart.
package main

import (
	"errors"
	"fmt"
	"log"

	"ppar/internal/jgf"
	"ppar/pp"
)

func main() {
	const n, iters = 200, 40

	reference := jgf.SORReference(n, iters)
	fmt.Printf("reference Gtotal (uninterrupted):  %.12f\n", reference)

	res := &jgf.SORResult{}
	factory := func() pp.App { return jgf.NewSOR(n, iters, res) }
	common := func(store pp.Store, mode pp.Mode, extra ...pp.Option) []pp.Option {
		return append([]pp.Option{
			pp.WithName("shard-demo"),
			pp.WithMode(mode),
			pp.WithModules(jgf.SORModules(mode)...),
			pp.WithStore(store),
			pp.WithShardCheckpoints(),
			pp.WithDeltaCheckpoint(5, 4), // every 5 safe points, anchor every 4 captures
			pp.WithAsyncCheckpoint(),
		}, extra...)
	}
	mustFail := func(opts []pp.Option) pp.Report {
		eng, err := pp.New(factory, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Run(); !errors.Is(err, pp.ErrInjectedFailure) {
			log.Fatalf("expected the injected failure, got: %v", err)
		}
		return eng.Report()
	}

	// Run 1: 4 replicas, each persisting its own shard chain through the
	// background pool; rank 2 dies at safe point 27, mid-chain.
	store := pp.NewMemStore()
	rep := mustFail(common(store, pp.Distributed, pp.WithProcs(4), pp.WithFailureAt(27, 2)))
	fmt.Printf("run 1: rank 2 of 4 died at safe point 27: %d waves committed, %d shard links (%d bytes), blocked %v\n",
		rep.Checkpoints, rep.ShardSaves, rep.ShardBytes, rep.SaveTotal)

	// Run 2: restart into a WIDER world. The manifest gates the restore to
	// the last complete wave; the shards repartition through their recorded
	// layouts onto 6 replicas.
	eng2, err := pp.New(factory, common(store, pp.Distributed, pp.WithProcs(6))...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		log.Fatal(err)
	}
	rep2 := eng2.Report()
	fmt.Printf("run 2: resharded 4 -> 6 replicas: restarted=%v replay=%v Gtotal=%.12f\n",
		rep2.Restarted, rep2.ReplayTime, res.Gtotal)
	if res.Gtotal != reference {
		log.Fatal("resharded restart differs from the uninterrupted reference")
	}

	// Run 3: the same protocol restarts ACROSS MODES — kill a fresh sharded
	// run, then reassemble its shards into a canonical state for the
	// shared-memory executor (shard → smp).
	store3 := pp.NewMemStore()
	mustFail(common(store3, pp.Distributed, pp.WithProcs(4), pp.WithFailureAt(27, 2)))
	eng3, err := pp.New(factory, common(store3, pp.Shared, pp.WithThreads(4))...)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng3.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 3: died as 4 sharded replicas, restarted as 4 threads: Gtotal=%.12f\n", res.Gtotal)
	if res.Gtotal != reference {
		log.Fatal("shard -> smp restart differs from the reference")
	}
	fmt.Println("shard checkpoints restarted across world sizes and modes with identical results")
}
