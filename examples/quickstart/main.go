// Command quickstart is the paper's Figure 1 example end to end: the JGF
// Series benchmark written once as sequential base code, then deployed
// sequentially, on a thread team, and across distributed replicas — same
// code, three deployments, identical results.
package main

import (
	"fmt"
	"log"

	"ppar/internal/core"
	"ppar/internal/jgf"
)

func main() {
	const terms = 64

	deployments := []struct {
		label string
		cfg   core.Config
	}{
		{"sequential (unplugged)", core.Config{Mode: core.Sequential}},
		{"shared memory, 4 threads", core.Config{Mode: core.Shared, Threads: 4}},
		{"distributed, 4 replicas", core.Config{Mode: core.Distributed, Procs: 4}},
		{"hybrid, 2 replicas x 2 threads", core.Config{Mode: core.Hybrid, Procs: 2, Threads: 2}},
	}

	var reference float64
	for i, d := range deployments {
		res := &jgf.SeriesResult{}
		cfg := d.cfg
		cfg.AppName = "quickstart-series"
		cfg.Modules = jgf.SeriesModules(cfg.Mode)
		eng, err := core.New(cfg, func() core.App { return jgf.NewSeries(terms, res) })
		if err != nil {
			log.Fatalf("%s: %v", d.label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", d.label, err)
		}
		rep := eng.Report()
		fmt.Printf("%-32s checksum=%.12f  (%v)\n", d.label, res.Checksum, rep.Elapsed)
		if i == 0 {
			reference = res.Checksum
		} else if res.Checksum != reference {
			log.Fatalf("%s: checksum %v differs from sequential %v", d.label, res.Checksum, reference)
		}
	}
	fmt.Println("all deployments produced bit-identical results")
}
