// Command quickstart is the paper's Figure 1 example end to end: the JGF
// Series benchmark written once as sequential base code, then deployed
// sequentially, on a thread team, and across distributed replicas — same
// code, three deployments, identical results.
package main

import (
	"fmt"
	"log"

	"ppar/internal/jgf"
	"ppar/pp"
)

func main() {
	const terms = 64

	deployments := []struct {
		label string
		mode  pp.Mode
		opts  []pp.Option
	}{
		{"sequential (unplugged)", pp.Sequential, nil},
		{"shared memory, 4 threads", pp.Shared, []pp.Option{pp.WithThreads(4)}},
		{"distributed, 4 replicas", pp.Distributed, []pp.Option{pp.WithProcs(4)}},
		{"hybrid, 2 replicas x 2 threads", pp.Hybrid, []pp.Option{pp.WithProcs(2), pp.WithThreads(2)}},
	}

	var reference float64
	for i, d := range deployments {
		res := &jgf.SeriesResult{}
		opts := append([]pp.Option{
			pp.WithName("quickstart-series"),
			pp.WithMode(d.mode),
			pp.WithModules(jgf.SeriesModules(d.mode)...),
		}, d.opts...)
		eng, err := pp.New(func() pp.App { return jgf.NewSeries(terms, res) }, opts...)
		if err != nil {
			log.Fatalf("%s: %v", d.label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", d.label, err)
		}
		rep := eng.Report()
		fmt.Printf("%-32s checksum=%.12f  (%v)\n", d.label, res.Checksum, rep.Elapsed)
		if i == 0 {
			reference = res.Checksum
		} else if res.Checksum != reference {
			log.Fatalf("%s: checksum %v differs from sequential %v", d.label, res.Checksum, reference)
		}
	}
	fmt.Println("all deployments produced bit-identical results")
}
