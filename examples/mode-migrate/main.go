// Command mode-migrate demonstrates in-process cross-mode migration: the
// same SOR base program starts on a shared-memory thread team and, at a safe
// point mid-run, migrates to a world of SPMD replicas — and later back —
// without leaving the Run call and without changing the result. This is the
// paper's adaptation-by-restart (Figures 6 and 7) collapsed into one
// process: the engine snapshots canonically into an internal memory store,
// swaps the executor, and replays to the same safe point.
package main

import (
	"fmt"
	"log"

	"ppar/internal/jgf"
	"ppar/pp"
)

func main() {
	const n, iters = 200, 40
	reference := jgf.SORReference(n, iters)
	fmt.Printf("reference Gtotal: %.12f\n\n", reference)

	scenarios := []struct {
		label string
		mode  pp.Mode
		opts  []pp.Option
	}{
		{
			"smp(4) -> dist(4) at safe point 20",
			pp.Shared,
			[]pp.Option{pp.WithThreads(4),
				pp.WithAdaptAt(20, pp.AdaptTarget{Mode: pp.Distributed, Procs: 4})},
		},
		{
			"dist(4) -> smp(4) at safe point 20",
			pp.Distributed,
			[]pp.Option{pp.WithProcs(4),
				pp.WithAdaptAt(20, pp.AdaptTarget{Mode: pp.Shared, Threads: 4})},
		},
		{
			"seq -> hybrid(2x2) at safe point 10",
			pp.Sequential,
			[]pp.Option{
				pp.WithAdaptAt(10, pp.AdaptTarget{Mode: pp.Hybrid, Procs: 2, Threads: 2})},
		},
		{
			"smp(2) -> dist(3) -> smp(4) (Schedule policy, there and back)",
			pp.Shared,
			[]pp.Option{pp.WithThreads(2),
				pp.WithAdaptPolicy(pp.Schedule(
					pp.AdaptStep{At: 10, Target: pp.AdaptTarget{Mode: pp.Distributed, Procs: 3}},
					pp.AdaptStep{At: 30, Target: pp.AdaptTarget{Mode: pp.Shared, Threads: 4}},
				))},
		},
		{
			"smp(4), policy: migrate right after the sp-16 checkpoint",
			pp.Shared,
			[]pp.Option{pp.WithThreads(4),
				pp.WithStore(pp.NewMemStore()), pp.WithCheckpointEvery(16),
				pp.WithAdaptPolicy(pp.PolicyFunc(func(s pp.RunStats) pp.AdaptTarget {
					// The cadence counters let the policy piggyback on a
					// fresh checkpoint: migrate exactly when one was taken.
					if s.Mode == pp.Shared && s.LastCheckpointSP == s.SafePoint {
						return pp.AdaptTarget{Mode: pp.Distributed, Procs: 2}
					}
					return pp.AdaptTarget{}
				}))},
		},
	}
	for _, sc := range scenarios {
		res := &jgf.SORResult{}
		// The full module set is plugged once; each executor uses the advice
		// its machinery understands, so the same deployment survives every
		// migration target.
		opts := append([]pp.Option{
			pp.WithName("mode-migrate"),
			pp.WithMode(sc.mode),
			pp.WithModules(jgf.SORModules(pp.Hybrid)...),
		}, sc.opts...)
		eng, err := pp.New(func() pp.App { return jgf.NewSOR(n, iters, res) }, opts...)
		if err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		if err := eng.Run(); err != nil {
			log.Fatalf("%s: %v", sc.label, err)
		}
		rep := eng.Report()
		status := "identical result"
		if res.Gtotal != reference {
			status = "RESULT DIVERGED"
		}
		fmt.Printf("%-62s migrations=%d blocked=%-10v %s\n",
			sc.label, rep.Migrations, rep.MigrationTotal, status)
		if res.Gtotal != reference {
			log.Fatal("migration changed the computation")
		}
		if rep.Migrations == 0 {
			log.Fatal("no migration happened")
		}
	}
	fmt.Println("\nall migrations preserved the computation")
}
